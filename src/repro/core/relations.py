"""Implication-relation database.

A relation ``a=va -> b=vb`` between two nodes *in the same time frame* is
stored in canonical form (an implication and its contrapositive are the
same fact).  Relations between two sequential elements are the paper's
*invalid-state relations*: ``F6=1 -> F4=0`` encodes that every state with
``F4=1 and F6=1`` is invalid.

The database also enforces the paper's clock-domain rule (section 3.3.2):
a relation between sequential elements of different classes is rejected at
insertion time because their differing capture instants would invalidate
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..circuit.gates import inv
from ..circuit.netlist import Circuit

#: (a_nid, a_val, b_nid, b_val) in canonical orientation.
RelationKey = Tuple[int, int, int, int]


def canonical(a: int, va: int, b: int, vb: int) -> RelationKey:
    """Canonical orientation of ``a=va -> b=vb``.

    The contrapositive ``b=inv(vb) -> a=inv(va)`` denotes the same fact;
    the lexicographically smaller of the two tuples is the key.
    """
    forward = (a, va, b, vb)
    contra = (b, inv(vb), a, inv(va))
    return forward if forward <= contra else contra


@dataclass
class Relation:
    """One learned same-frame implication with provenance."""

    a: int
    va: int
    b: int
    vb: int
    #: 'single', 'multi' or 'equiv' -- which learning phase found it.
    source: str = "single"
    #: True when the relation needed cross-frame analysis (frame >= 1).
    sequential: bool = True
    #: Frames after power-up before the relation is guaranteed to hold
    #: (the contrapositive chain reaches this many frames into the past).
    warmup: int = 1

    def key(self) -> RelationKey:
        return canonical(self.a, self.va, self.b, self.vb)


class RelationDB:
    """Deduplicated store of learned relations with fast implication lookup."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._relations: Dict[RelationKey, Relation] = {}
        self._adj: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._domain_of: Dict[int, Tuple] = {
            fid: circuit.nodes[fid].domain_key() for fid in circuit.ffs}
        #: frame -> antecedent-indexed buckets (see :meth:`frame_index`).
        self._frame_index: Dict[
            int, Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]]] = {}

    # ------------------------------------------------------------------
    def add(self, a: int, va: int, b: int, vb: int, *,
            source: str = "single", sequential: bool = True,
            warmup: int = 1) -> bool:
        """Insert a relation; returns True when it is new and accepted."""
        if a == b:
            return False
        dom_a = self._domain_of.get(a)
        dom_b = self._domain_of.get(b)
        if dom_a is not None and dom_b is not None and dom_a != dom_b:
            return False  # cross-clock-domain FF pair (section 3.3.2)
        key = canonical(a, va, b, vb)
        if key in self._relations:
            existing = self._relations[key]
            # Keep the strongest evidence: earliest validity, comb beats seq.
            if sequential is False:
                existing.sequential = False
            if warmup < existing.warmup:
                existing.warmup = warmup
                self._frame_index.clear()
            return False
        ka, kva, kb, kvb = key
        relation = Relation(ka, kva, kb, kvb, source=source,
                            sequential=sequential, warmup=warmup)
        self._relations[key] = relation
        self._adj.setdefault((ka, kva), []).append((kb, kvb, relation))
        self._adj.setdefault((kb, inv(kvb)), []).append(
            (ka, inv(kva), relation))
        self._frame_index.clear()
        return True

    # ------------------------------------------------------------------
    def implications_of(self, nid: int, value: int) -> List[Tuple[int, int]]:
        """All (node, value) pairs directly implied by ``nid=value``."""
        return [(m, u) for m, u, _r in self._adj.get((nid, value), ())]

    def implications_at(self, nid: int, value: int,
                        frame: int) -> List[Tuple[int, int]]:
        """Direct implications valid at ``frame`` (warm-up respected)."""
        return [(m, u) for m, u, r in self._adj.get((nid, value), ())
                if r.warmup <= frame]

    def frame_index(self, frame: int
                    ) -> Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]]:
        """Antecedent-indexed implication buckets valid at ``frame``.

        ``{(nid, value): ((m, u), ...)}`` with exactly the pairs (and
        order) :meth:`implications_at` would return, but built once and
        cached, so a hot caller pays one dict lookup per antecedent
        instead of a filtered list build.  The cache is invalidated by
        any :meth:`add` that changes the database.
        """
        buckets = self._frame_index.get(frame)
        if buckets is None:
            buckets = {}
            for key, entries in self._adj.items():
                hits = tuple((m, u) for m, u, r in entries
                             if r.warmup <= frame)
                if hits:
                    buckets[key] = hits
            self._frame_index[frame] = buckets
        return buckets

    def closure_of(self, nid: int, value: int) -> Dict[int, int]:
        """Transitive closure of direct implications (conflict -> None).

        Returns {node: value}; if the closure is contradictory the node is
        effectively tied and the caller should treat ``nid=value`` as
        impossible -- signalled by raising :class:`ValueError`.
        """
        out: Dict[int, int] = {nid: value}
        stack = [(nid, value)]
        while stack:
            cur = stack.pop()
            for m, u, _r in self._adj.get(cur, ()):
                if m in out:
                    if out[m] != u:
                        raise ValueError(
                            f"contradictory closure from {nid}={value}")
                    continue
                out[m] = u
                stack.append((m, u))
        del out[nid]
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._relations)

    def __iter__(self):
        return iter(self._relations.values())

    def __contains__(self, item) -> bool:
        a, va, b, vb = item
        return canonical(a, va, b, vb) in self._relations

    def has(self, a_name: str, va: int, b_name: str, vb: int) -> bool:
        """Name-based membership check (test/report convenience)."""
        return (self.circuit.nid(a_name), va,
                self.circuit.nid(b_name), vb) in self

    # ------------------------------------------------------------------
    def kind(self, relation: Relation) -> str:
        """'ff_ff', 'gate_ff' or 'gate_gate'."""
        a_ff = self.circuit.nodes[relation.a].is_sequential
        b_ff = self.circuit.nodes[relation.b].is_sequential
        if a_ff and b_ff:
            return "ff_ff"
        if a_ff or b_ff:
            return "gate_ff"
        return "gate_gate"

    def counts(self, sequential_only: bool = False) -> Dict[str, int]:
        """Relation counts by kind (the paper's Table 3 columns)."""
        out = {"ff_ff": 0, "gate_ff": 0, "gate_gate": 0}
        for relation in self:
            if sequential_only and not relation.sequential:
                continue
            out[self.kind(relation)] += 1
        return out

    def invalid_state_relations(self) -> List[Relation]:
        """FF-FF relations (each encodes a set of invalid states)."""
        return [r for r in self if self.kind(r) == "ff_ff"]

    # ------------------------------------------------------------------
    def dump(self) -> List[str]:
        """Human-readable relation list, sorted, one per line."""
        lines = []
        for relation in self:
            na = self.circuit.nodes[relation.a].name
            nb = self.circuit.nodes[relation.b].name
            lines.append(
                f"{na}={relation.va} -> {nb}={relation.vb}"
                f"  [{relation.source}{'' if relation.sequential else ',comb'}]")
        return sorted(lines)

    def violated_by(self, values: Dict[int, int],
                    frame: Optional[int] = None) -> Optional[Relation]:
        """First relation contradicted by a (partial) value assignment.

        ``values`` maps node id -> 0/1.  Used by the ATPG to prune state
        justification: a requirement that violates an invalid-state
        relation can never be justified.  When ``frame`` is given,
        relations whose warm-up exceeds it are skipped (they are not yet
        guaranteed that close to power-up).
        """
        for relation in self._relations.values():
            if frame is not None and relation.warmup > frame:
                continue
            va = values.get(relation.a)
            vb = values.get(relation.b)
            if va == relation.va and vb is not None and vb != relation.vb:
                return relation
            if vb == inv(relation.vb) and va is not None \
                    and va != inv(relation.va):
                return relation
        return None
