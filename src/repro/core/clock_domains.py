"""Clock-domain classification of sequential elements (paper section 3.3.2).

Learned relations must be valid regardless of temporal relationships
between clocks, so sequential elements are grouped into classes of
identical (clock, phase, element-kind); a clock and its gated version are
distinct clocks by name.  Learning runs once per class: cross-frame
propagation is allowed only through the class under analysis, and the
relation database additionally rejects FF-FF relations that straddle
classes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..circuit.netlist import Circuit

DomainKey = Tuple[str, int, str]


def classify_ffs(circuit: Circuit) -> Dict[DomainKey, List[int]]:
    """Group sequential-element node ids by domain class."""
    classes: Dict[DomainKey, List[int]] = {}
    for fid in circuit.ffs:
        classes.setdefault(circuit.nodes[fid].domain_key(), []).append(fid)
    return classes


def learning_passes(circuit: Circuit) -> List[Tuple[DomainKey, Set[int]]]:
    """One (class key, active FF set) pass per clock-domain class.

    Single-class circuits (the common benchmark case) get exactly one
    pass over all FFs, so the classification adds no cost there.
    """
    classes = classify_ffs(circuit)
    return [(key, set(members)) for key, members in sorted(classes.items())]


def is_single_domain(circuit: Circuit) -> bool:
    return len(classify_ffs(circuit)) <= 1
