"""Combinationally equivalent gate identification (paper section 3.1).

Three-valued simulation cannot see through re-structured logic: in the
paper's Figure 1, injecting F2=0 sets G4=AND(F1,F2) to 0 but leaves the
restructured G2 at X.  Knowing G2 == G4 lets the simulator copy the value
and learn extra relations.

Candidates come from bit-parallel random-pattern signatures over the
combinational logic (FF outputs as pseudo-inputs); a candidate pair is
accepted only after *exact* verification by exhaustive enumeration over
the union of the two input supports (skipped, i.e. rejected, when the
support exceeds ``max_support`` -- soundness is never traded for yield,
since every learned relation must hold on the real circuit).
Complemented pairs (a == NOT b) are detected and used the same way.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..sim.eventsim import Coupling
from ..sim.parallel import exhaustive_masks, signatures
from .ties import TieSet


def eval_cone(circuit: Circuit, targets: List[int],
              source_masks: Dict[int, int], width: int) -> Dict[int, int]:
    """Evaluate only the cones of ``targets`` over packed patterns.

    ``source_masks`` must cover every PI/FF feeding the cones.  Constant
    gates evaluate naturally.
    """
    cone = set()
    for target in targets:
        cone.update(circuit.combinational_fanin_cone(target))
    masks = dict(source_masks)
    full = (1 << width) - 1
    for nid in circuit.topo_order:
        if nid not in cone or nid in masks:
            continue
        node = circuit.nodes[nid]
        t = node.gate_type
        if t is GateType.TIE0:
            masks[nid] = 0
            continue
        if t is GateType.TIE1:
            masks[nid] = full
            continue
        fanin_masks = [masks[f] for f in node.fanins]
        if t is GateType.AND:
            acc = full
            for m in fanin_masks:
                acc &= m
        elif t is GateType.NAND:
            acc = full
            for m in fanin_masks:
                acc &= m
            acc ^= full
        elif t is GateType.OR:
            acc = 0
            for m in fanin_masks:
                acc |= m
        elif t is GateType.NOR:
            acc = 0
            for m in fanin_masks:
                acc |= m
            acc ^= full
        elif t is GateType.NOT:
            acc = fanin_masks[0] ^ full
        elif t is GateType.BUF:
            acc = fanin_masks[0]
        elif t is GateType.XOR or t is GateType.XNOR:
            acc = 0
            for m in fanin_masks:
                acc ^= m
            if t is GateType.XNOR:
                acc ^= full
        else:  # pragma: no cover
            raise AssertionError(t)
        masks[nid] = acc
    return masks


def verify_pair(circuit: Circuit, a: int, b: int,
                max_support: int = 14) -> Optional[int]:
    """Exact equivalence check of two combinational nodes.

    Returns 0 for equal, 1 for complementary, ``None`` for not equivalent
    or support too large to verify.
    """
    support = sorted(set(circuit.cone_support(a)) |
                     set(circuit.cone_support(b)))
    if len(support) > max_support:
        return None
    width = 1 << len(support)
    masks = eval_cone(circuit, [a, b],
                      exhaustive_masks(support, width), width)
    full = (1 << width) - 1
    if masks[a] == masks[b]:
        return 0
    if masks[a] == masks[b] ^ full:
        return 1
    return None


def find_equivalences(circuit: Circuit, ties: Optional[TieSet] = None,
                      *, width: int = 256, max_support: int = 14,
                      rng: Optional[random.Random] = None,
                      backend: str = "reference"
                      ) -> Dict[int, Tuple[int, int]]:
    """Equivalence classes over combinational gates.

    Returns the :attr:`repro.sim.eventsim.Coupling.equiv` mapping
    ``nid -> (class id, polarity)``.  Tied gates are excluded (they are
    constants, handled by the tie mechanism); classes with a single member
    are dropped.  ``backend`` selects the signature simulator (the
    candidate buckets are bit-identical either way); exact verification
    stays on the cone-limited evaluator regardless.
    """
    rng = rng or random.Random(987654321)
    sigs = signatures(circuit, width, rng, backend=backend)
    full = (1 << width) - 1
    tied = set(ties.combinational()) if ties is not None else set()
    buckets: Dict[int, List[int]] = {}
    for node in circuit.nodes:
        if not node.is_combinational:
            continue
        if node.gate_type in (GateType.TIE0, GateType.TIE1):
            continue
        if node.nid in tied:
            continue
        sig = sigs[node.nid]
        if sig == 0 or sig == full:
            # Constant under random patterns but not a proven tie; the
            # tie machinery owns constants, skip here.
            continue
        buckets.setdefault(min(sig, sig ^ full), []).append(node.nid)
    parent: Dict[int, int] = {}
    polarity: Dict[int, int] = {}

    def find(x: int) -> Tuple[int, int]:
        if parent[x] == x:
            return x, 0
        root, pol = find(parent[x])
        parent[x] = root
        polarity[x] ^= pol
        return root, polarity[x]

    def union(x: int, y: int, pol_xy: int) -> None:
        rx, px = find(x)
        ry, py = find(y)
        if rx == ry:
            return
        parent[ry] = rx
        polarity[ry] = px ^ py ^ pol_xy

    for members in buckets.values():
        if len(members) < 2:
            continue
        for nid in members:
            parent.setdefault(nid, nid)
            polarity.setdefault(nid, 0)
        rep = members[0]
        for other in members[1:]:
            verdict = verify_pair(circuit, rep, other,
                                  max_support=max_support)
            if verdict is not None:
                union(rep, other, verdict)
    # Emit classes with >= 2 members.
    classes: Dict[int, List[int]] = {}
    for nid in parent:
        root, _pol = find(nid)
        classes.setdefault(root, []).append(nid)
    out: Dict[int, Tuple[int, int]] = {}
    class_id = 0
    for root, members in sorted(classes.items()):
        if len(members) < 2:
            continue
        for nid in members:
            _r, pol = find(nid)
            out[nid] = (class_id, pol)
        class_id += 1
    return out


def coupling_from(ties: TieSet,
                  equiv: Optional[Dict[int, Tuple[int, int]]] = None
                  ) -> Coupling:
    """Bundle learned ties and equivalences for the simulator."""
    return Coupling(ties=dict(ties.combinational()),
                    equiv=dict(equiv or {})).finalize()
