"""Sequential learning of implications, invalid states and tied gates."""

from .clock_domains import classify_ffs, is_single_domain, learning_passes
from .engine import LearnConfig, LearnResult, SequentialLearner, learn
from .equivalence import coupling_from, find_equivalences, verify_pair
from .multi_node import MultiNodeStats, build_injections, run_multi_node
from .relations import Relation, RelationDB, canonical
from .single_node import (
    SingleNodeData,
    extract_cross_frame_relations,
    extract_same_frame_relations,
    run_single_node,
)
from .ties import (
    TieInfo,
    TieSet,
    propagate_tie_constants,
    ties_from_single_node,
    untestable_faults_from_ties,
)

__all__ = [
    "classify_ffs", "is_single_domain", "learning_passes",
    "LearnConfig", "LearnResult", "SequentialLearner", "learn",
    "coupling_from", "find_equivalences", "verify_pair",
    "MultiNodeStats", "build_injections", "run_multi_node",
    "Relation", "RelationDB", "canonical",
    "SingleNodeData", "extract_cross_frame_relations",
    "extract_same_frame_relations", "run_single_node",
    "TieInfo", "TieSet", "propagate_tie_constants",
    "ties_from_single_node", "untestable_faults_from_ties",
]
