"""Tie-gate extraction (paper section 3.2).

A gate is *tied* to value v when no input sequence can set it to inv(v).
Three mechanisms identify ties:

1. **Single-node criterion**: both values of some stem imply the same
   value v on node G at the same frame -- G is tied to v (frame 0 makes it
   a combinational tie, later frames a sequential tie).
2. **Constant propagation**: with known ties treated as frame constants,
   forward simulation with no injections determines further nodes; those
   are tied too (this is how G8 = AND(F2, G3) follows from the G3 tie).
3. **Multiple-node conflicts** (in :mod:`repro.core.multi_node`): a
   contradiction while simulating the contrapositive assignment set of
   ``G=v`` proves G tied to inv(v) -- the paper's G15 example.

Sequentially tied gates are c-cycle redundant (ref [13] of the paper):
the stuck-at-v fault on a gate tied to v is untestable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..circuit.gates import ONE, ZERO
from ..circuit.netlist import Circuit
from ..sim.eventsim import Coupling, FrameSimulator
from .single_node import SingleNodeData


@dataclass(frozen=True)
class TieInfo:
    """A node proven constant."""

    nid: int
    value: int
    #: False when the tie holds combinationally (frame 0), True when it
    #: only holds after warm-up cycles.
    sequential: bool
    #: Which mechanism proved it: 'single', 'propagation', 'multi'.
    phase: str
    #: Frames after power-up before the tie value is guaranteed.
    warmup: int = 0


class TieSet:
    """Deduplicated tie collection; combinational evidence wins."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._ties: Dict[int, TieInfo] = {}

    def add(self, nid: int, value: int, sequential: bool,
            phase: str, warmup: int = 0) -> bool:
        if not sequential:
            warmup = 0
        existing = self._ties.get(nid)
        if existing is not None:
            # A node cannot be tied to both values in a consistent circuit;
            # keep the stronger (earlier-valid) evidence.
            if existing.value == value and warmup < existing.warmup:
                self._ties[nid] = TieInfo(nid, value, sequential, phase,
                                          warmup)
            return False
        self._ties[nid] = TieInfo(nid, value, sequential, phase, warmup)
        return True

    def value_of(self, nid: int) -> Optional[int]:
        info = self._ties.get(nid)
        return None if info is None else info.value

    def combinational(self) -> Dict[int, int]:
        """nid -> value for combinational ties (usable as constants)."""
        return {nid: t.value for nid, t in self._ties.items()
                if not t.sequential}

    def all(self) -> List[TieInfo]:
        return sorted(self._ties.values(), key=lambda t: t.nid)

    def __len__(self) -> int:
        return len(self._ties)

    def __contains__(self, nid: int) -> bool:
        return nid in self._ties

    def names(self) -> Dict[str, int]:
        return {self.circuit.nodes[n].name: t.value
                for n, t in self._ties.items()}


def ties_from_single_node(data: SingleNodeData, circuit: Circuit,
                          ties: Optional[TieSet] = None) -> TieSet:
    """Apply the both-values-imply-same criterion to phase-one results."""
    if ties is None:
        ties = TieSet(circuit)
    stems = {s for s, _v in data.runs}
    for stem in stems:
        run0 = data.runs.get((stem, ZERO))
        run1 = data.runs.get((stem, ONE))
        # An injection that immediately conflicts proves the stem itself
        # tied to the other value.
        for value, run in ((ZERO, run0), (ONE, run1)):
            if run is not None and run.conflict is not None:
                ties.add(stem, 1 - value, sequential=False, phase="single")
        if run0 is None or run1 is None or run0.conflict or run1.conflict:
            continue
        depth = min(len(run0.frames), len(run1.frames))
        for frame in range(depth):
            implied0 = data.implied_at(stem, ZERO, frame)
            if not implied0:
                continue
            implied1 = data.implied_at(stem, ONE, frame)
            for nid, val in implied0.items():
                if implied1.get(nid) == val:
                    ties.add(nid, val, sequential=frame >= 1,
                             phase="single", warmup=frame)
    return ties


def propagate_tie_constants(circuit: Circuit, ties: TieSet,
                            max_frames: int = 50) -> int:
    """Grow the tie set by constant propagation; returns ties added.

    Runs an injection-free simulation with current combinational ties as
    frame constants.  Every value that becomes known is a tie: at frame 0
    combinational, later sequential (the FF needs warm-up cycles).
    Iterates until no new combinational ties appear.
    """
    added = 0
    while True:
        coupling = Coupling(ties=dict(ties.combinational()))
        simulator = FrameSimulator(circuit, coupling)
        result = simulator.run({}, max_frames=max_frames)
        new_comb = 0
        for frame, values in enumerate(result.frames):
            for nid, val in values.items():
                if nid in simulator._constants:
                    continue
                if ties.add(nid, val, sequential=frame >= 1,
                            phase="propagation", warmup=frame):
                    added += 1
                    if frame == 0:
                        new_comb += 1
        if new_comb == 0:
            break
    return added


def untestable_faults_from_ties(circuit: Circuit, ties: TieSet,
                                fault_list, classes=None) -> List:
    """Faults proven untestable by tie gates.

    A node tied to v makes its stuck-at-v fault untestable (the fault-free
    and faulty machines never differ), and any branch fault whose stem is
    tied to the same value likewise.  ``fault_list`` is a sequence of
    :class:`repro.atpg.faults.Fault`.

    ``classes`` (optional, from
    :func:`repro.atpg.faults.collapse_with_classes`) maps each collapsed
    representative to its whole equivalence class; a representative is
    untestable when *any* class member is (e.g. ``G14 s-a-1`` equivalent
    to a tied gate's ``G15 s-a-0``).
    """

    def fault_is_tied(fault) -> bool:
        if fault.pin is None:
            site = fault.node
        else:
            site = circuit.nodes[fault.node].fanins[fault.pin]
        tied = ties.value_of(site)
        return tied is not None and tied == fault.value

    out = []
    for fault in fault_list:
        members = classes.get(fault, [fault]) if classes else [fault]
        if any(fault_is_tied(member) for member in members):
            out.append(fault)
    return out
