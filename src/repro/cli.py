"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands
--------
learn CIRCUIT        run sequential learning; ``--save FILE`` persists it
atpg CIRCUIT         ATPG comparison; ``--learned FILE`` skips relearning
faultsim CIRCUIT     grade generated tests against the full fault list
compare CIRCUIT      the paper's Table-5 protocol over backtrack limits
suite CIRCUIT...     batch pipeline over many circuits (JSON report);
                     ``--jobs N`` shards them over N worker processes
untestable CIRCUIT   tie-gate vs FIRES untestability comparison
analyze CIRCUIT      density of encoding (small circuits)
stats CIRCUIT        structural statistics
list                 list built-in circuit names
serve                run the warm JSON-over-HTTP daemon
coordinator C...     serve one suite as fault-sharded units to workers
worker               lease and execute units from a coordinator

Every command takes ``--json`` for machine-readable output on stdout.
CIRCUIT is a built-in name (``figure1``, ``s27``, ...), a profile name
prefixed with ``like:`` (``like:s382`` or ``like:s382@0.5``), or a path
to an ISCAS-89 ``.bench`` file.

This module is a pure adapter: argv parses into a typed
:mod:`repro.api` request, :func:`repro.api.execute` runs it, and the
response envelope renders as text or JSON.  ``--json`` output *is* the
versioned envelope (``schema_version``, ``command``, ``ok``, result
fields inlined) -- byte-identical to what ``repro serve`` answers for
the same request document.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api import (
    ArtifactStore,
    ATPGRequest,
    AnalyzeRequest,
    CompareRequest,
    FaultSimRequest,
    LearnRequest,
    ListRequest,
    ProgressEvent,
    Request,
    Response,
    StatsRequest,
    SuiteRequest,
    UntestableRequest,
    execute,
)
from .circuit.netlist import Circuit
from .core import LearnConfig
from .flow import (
    ATPG_ENGINES,
    ATPG_MODES,
    SIM_BACKENDS,
    ATPGConfig,
    CircuitResolveError,
    ReproConfig,
)
from .flow.session import resolve_circuit as _resolve_circuit


def resolve_circuit(spec: str, retime: int = 0) -> Circuit:
    """Turn a CLI circuit spec into a Circuit (SystemExit on bad specs)."""
    try:
        return _resolve_circuit(spec, retime)
    except CircuitResolveError as exc:
        raise SystemExit(f"repro: error: {exc}") from exc


# ----------------------------------------------------------------------
# argv -> request
# ----------------------------------------------------------------------
def _config(args, learn_config: Optional[LearnConfig] = None,
            atpg_config: Optional[ATPGConfig] = None) -> ReproConfig:
    atpg_config = atpg_config or ATPGConfig()
    atpg_config.sim_backend = getattr(args, "backend",
                                      atpg_config.sim_backend)
    atpg_config.atpg_engine = getattr(args, "atpg_engine",
                                      atpg_config.atpg_engine)
    return ReproConfig(learn=learn_config or LearnConfig(),
                       atpg=atpg_config,
                       retime=getattr(args, "retime", 0),
                       jobs=getattr(args, "jobs", 1))


def _req_list(args) -> Request:
    return ListRequest()


def _req_stats(args) -> Request:
    return StatsRequest(spec=args.circuit, config=_config(args))


def _req_learn(args) -> Request:
    return LearnRequest(
        spec=args.circuit,
        config=_config(args, learn_config=LearnConfig(
            max_frames=args.max_frames,
            use_multi_node=not args.no_multi,
            use_equivalence=not args.no_equiv)),
        validate_sequences=args.validate,
        save=args.save,
        canonical=getattr(args, "canonical", False),
        # Tie/relation listings ride on the payload only when the text
        # renderer needs them; the historical --json shape stays lean.
        details=args.verbose and not args.json)


def _atpg_config(args, **overrides) -> ATPGConfig:
    return ATPGConfig(backtrack_limit=args.backtrack_limit,
                      max_frames=args.window,
                      max_faults=args.max_faults,
                      **overrides)


def _req_atpg(args) -> Request:
    modes = tuple(ATPG_MODES) if args.mode == "all" else (args.mode,)
    return ATPGRequest(
        spec=args.circuit,
        config=_config(args,
                       learn_config=LearnConfig(max_frames=args.max_frames),
                       atpg_config=_atpg_config(args)),
        modes=modes,
        learned=args.learned,
        canonical=getattr(args, "canonical", False))


def _req_faultsim(args) -> Request:
    modes = tuple(ATPG_MODES) if args.mode == "all" else (args.mode,)
    return FaultSimRequest(
        spec=args.circuit,
        config=_config(args,
                       learn_config=LearnConfig(max_frames=args.max_frames),
                       atpg_config=_atpg_config(args)),
        modes=modes,
        canonical=getattr(args, "canonical", False))


def _req_compare(args) -> Request:
    return CompareRequest(
        spec=args.circuit,
        config=_config(args,
                       learn_config=LearnConfig(max_frames=args.max_frames),
                       atpg_config=_atpg_config(args)),
        backtrack_limits=tuple(args.backtrack_limits),
        canonical=getattr(args, "canonical", False))


def _req_suite(args) -> Request:
    modes = tuple(ATPG_MODES) if args.mode == "all" else (args.mode,)
    return SuiteRequest(
        specs=tuple(args.circuits),
        config=_config(args,
                       learn_config=LearnConfig(max_frames=args.max_frames),
                       atpg_config=_atpg_config(args)),
        modes=modes,
        out=args.out,
        canonical=args.canonical)


def _req_untestable(args) -> Request:
    return UntestableRequest(spec=args.circuit, config=_config(args),
                             canonical=getattr(args, "canonical", False))


def _req_analyze(args) -> Request:
    return AnalyzeRequest(spec=args.circuit, config=_config(args),
                          max_ffs=args.max_ffs)


# ----------------------------------------------------------------------
# response -> text
# ----------------------------------------------------------------------
def _render_learn(args, result) -> None:
    print("summary:", result["learn"])
    if args.save:
        print(f"saved learning artifact to {args.save}")
    if args.verbose:
        details = result.get("details", {})
        print("\nties:")
        for tie in details.get("ties", ()):
            print(f"  {tie['node']} = {tie['value']} "
                  f"[{tie['kind']}, {tie['phase']}]")
        print("\nrelations:")
        for line in details.get("relations", ()):
            print(f"  {line}")
    validation = result.get("validation")
    if validation is not None:
        violations = validation["violations"]
        print(f"\nvalidation: {len(violations)} violations")
        for violation in violations[:10]:
            print(f"  {violation}")


def _render_atpg(args, result) -> None:
    if "learn" in result:
        source = f" (from {args.learned})" if args.learned else ""
        print(f"learning: {result['learn']}{source}\n")
    for mode, row in result.get("atpg", {}).items():
        print(f"mode={mode:9s} {row}")


def _render_faultsim(args, result) -> None:
    if "learn" in result:
        print(f"learning: {result['learn']}\n")
    for mode, grade in result.get("fault_sim", {}).items():
        print(f"mode={mode:9s} {grade}")


def _render_compare(args, result) -> None:
    if "learn" in result:
        print(f"learning: {result['learn']}\n")
    for row in result["compare"]["rows"]:
        print(f"limit={row['backtrack_limit']:<5d} "
              f"mode={row['mode']:9s} {row}")


def _render_suite(args, result) -> None:
    print("\nsuite results:")
    for report in result["reports"]:
        for mode, stats in sorted(report.get("atpg", {}).items()):
            row = {"circuit": report["circuit"], "mode": mode, **stats}
            print(f"  {row}")
    for error in result["errors"]:
        print(f"  error: {error['spec']}: {error['error']}",
              file=sys.stderr)
    if args.out:
        print(f"saved suite report to {args.out}")


def _render_untestable(args, result) -> None:
    print(result["untestable"])


def _render_analyze(args, result) -> None:
    print(f"{result['circuit']}: {result['ffs']} FFs, "
          f"{result['valid_states']} valid states, "
          f"density of encoding {result['density_of_encoding']:.4f}")


def _render_stats(args, result) -> None:
    stats = {key: value for key, value in result.items()
             if key not in ("circuit", "fingerprint")}
    print(f"{result['circuit']}: {stats}")


def _render_list(args, result) -> None:
    for name in result["circuits"]:
        print(name)


#: command -> (argv -> Request, text renderer).
_COMMANDS = {
    "list": (_req_list, _render_list),
    "stats": (_req_stats, _render_stats),
    "learn": (_req_learn, _render_learn),
    "atpg": (_req_atpg, _render_atpg),
    "faultsim": (_req_faultsim, _render_faultsim),
    "compare": (_req_compare, _render_compare),
    "suite": (_req_suite, _render_suite),
    "untestable": (_req_untestable, _render_untestable),
    "analyze": (_req_analyze, _render_analyze),
}


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequential learning for real circuits (DAC 1998 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p):
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output (the versioned "
                            "repro.api response envelope)")

    def add_circuit(p):
        p.add_argument("circuit",
                       help="builtin name, like:<profile>[@scale], or "
                            ".bench path")
        p.add_argument("--retime", type=int, default=0, metavar="MOVES",
                       help="apply N backward-retiming moves first")
        add_json(p)

    def add_canonical(p):
        p.add_argument("--canonical", action="store_true",
                       help="zero volatile wall-clock fields so the "
                            "response is byte-identical across runs "
                            "(and to a repro serve answer)")

    def add_backend(p):
        p.add_argument("--backend", default="compiled",
                       choices=SIM_BACKENDS,
                       help="simulation backend (compiled straight-line "
                            "kernels, vectorized array kernels, or the "
                            "reference interpreters; identical results)")

    p = sub.add_parser("list", help="list built-in circuits")
    add_json(p)

    p = sub.add_parser("stats", help="structural statistics")
    add_circuit(p)

    p = sub.add_parser("learn", help="run sequential learning")
    add_circuit(p)
    add_backend(p)
    p.add_argument("--max-frames", type=int, default=50)
    p.add_argument("--no-multi", action="store_true",
                   help="disable multiple-node learning")
    p.add_argument("--no-equiv", action="store_true",
                   help="disable gate-equivalence identification")
    p.add_argument("--verbose", "-v", action="store_true")
    p.add_argument("--validate", type=int, default=0, metavar="N",
                   help="Monte-Carlo check with N random sequences")
    p.add_argument("--save", metavar="FILE",
                   help="write the learning artifact as JSON")
    add_canonical(p)

    def add_atpg_knobs(p):
        add_backend(p)
        p.add_argument("--atpg-engine", default="incremental",
                       choices=ATPG_ENGINES,
                       help="PODEM engine (incremental event-driven "
                            "search or the reference re-simulating "
                            "loop; identical results)")
        p.add_argument("--backtrack-limit", type=int, default=30)
        p.add_argument("--window", type=int, default=8,
                       help="maximum time-frame window")
        p.add_argument("--max-frames", type=int, default=50,
                       help="learning simulation depth")
        p.add_argument("--max-faults", type=int, default=None)
        p.add_argument("--mode", default="all",
                       choices=("all",) + ATPG_MODES,
                       help="implication mode(s) to run")

    p = sub.add_parser("atpg", help="ATPG with learned implications")
    add_circuit(p)
    add_atpg_knobs(p)
    p.add_argument("--learned", metavar="FILE",
                   help="load a saved learning artifact instead of "
                        "relearning")
    add_canonical(p)

    p = sub.add_parser("faultsim",
                       help="fault-grade the generated test sets")
    add_circuit(p)
    add_atpg_knobs(p)
    add_canonical(p)

    p = sub.add_parser("compare",
                       help="Table-5 protocol: every mode at every "
                            "backtrack limit")
    add_circuit(p)
    add_backend(p)
    p.add_argument("--atpg-engine", default="incremental",
                   choices=ATPG_ENGINES)
    p.add_argument("--backtrack-limits", type=int, nargs="+",
                   default=[30, 1000], metavar="N",
                   help="backtrack limits to sweep (paper: 30 and 1000)")
    p.add_argument("--backtrack-limit", type=int, default=30,
                   help=argparse.SUPPRESS)  # shared config plumbing
    p.add_argument("--window", type=int, default=8,
                   help="maximum time-frame window")
    p.add_argument("--max-frames", type=int, default=50,
                   help="learning simulation depth")
    p.add_argument("--max-faults", type=int, default=None)
    add_canonical(p)

    p = sub.add_parser("suite", help="batch pipeline over many circuits")
    p.add_argument("circuits", nargs="+",
                   help="circuit specs (builtin, like:<profile>, .bench)")
    p.add_argument("--retime", type=int, default=0, metavar="MOVES")
    add_json(p)
    add_atpg_knobs(p)
    p.add_argument("--out", metavar="FILE",
                   help="also write the suite report JSON to FILE "
                        "(atomic write)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard circuits over N worker processes "
                        "(0 = one per CPU core; default 1 = serial; "
                        "the report is identical for every N -- CLI "
                        "specs are strings, which always shard safely)")
    p.add_argument("--canonical", action="store_true",
                   help="zero volatile wall-clock fields so the report "
                        "is byte-identical across runs and --jobs "
                        "values")

    p = sub.add_parser("untestable", help="tie gates vs FIRES")
    add_circuit(p)
    add_backend(p)
    add_canonical(p)

    p = sub.add_parser("analyze", help="density of encoding")
    add_circuit(p)
    p.add_argument("--max-ffs", type=int, default=16)

    p = sub.add_parser("serve",
                       help="run the warm JSON-over-HTTP daemon "
                            "(POST /v1/execute)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8451)
    p.add_argument("--store", metavar="DIR", default=None,
                   help="persist learn artifacts content-addressed "
                        "under DIR (default: in-memory only)")
    p.add_argument("--allow-file-requests", action="store_true",
                   help="accept requests that name server-side file "
                        "paths (save/out/learned); off by default -- "
                        "network clients would get file access as the "
                        "daemon user")
    p.add_argument("--queue-depth", type=int, default=16, metavar="N",
                   help="waiting requests accepted per priority class "
                        "before answering 429 + Retry-After "
                        "(default: 16)")
    p.add_argument("--max-active", type=int, default=None, metavar="N",
                   help="concurrent execution slots (default: from "
                        "cpu count, 2..8)")
    p.add_argument("--deadline-cap", type=float, default=None,
                   metavar="S",
                   help="server-wide ceiling on request deadlines in "
                        "seconds; also applied to requests naming no "
                        "deadline (default: none)")
    p.add_argument("--stream", action="store_true", default=True,
                   dest="stream",
                   help="enable POST /v1/stream and NDJSON/SSE "
                        "responses (default)")
    p.add_argument("--no-stream", action="store_false", dest="stream",
                   help="disable the streaming endpoints")

    p = sub.add_parser("coordinator",
                       help="serve one suite as fault-sharded units; "
                            "prints the merged suite report when the "
                            "worker fleet drains (byte-identical to "
                            "repro suite --canonical)")
    p.add_argument("circuits", nargs="+",
                   help="circuit specs (builtin, like:<profile>, .bench)")
    p.add_argument("--retime", type=int, default=0, metavar="MOVES")
    add_json(p)
    add_atpg_knobs(p)
    p.add_argument("--shards", type=int, default=4, metavar="N",
                   help="fault-list shards per (circuit, mode) unit")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8452)
    p.add_argument("--store", metavar="DIR", default=None,
                   help="serve learn artifacts content-addressed from "
                        "DIR (default: in-memory only)")
    p.add_argument("--journal", metavar="DIR", default=None,
                   help="journal completed units under DIR so a "
                        "restarted coordinator resumes from partial "
                        "results")
    p.add_argument("--lease-timeout", type=float, default=60.0,
                   metavar="S",
                   help="seconds before an unheartbeated lease expires "
                        "and its unit is re-issued")
    p.add_argument("--out", metavar="FILE",
                   help="also write the merged suite envelope to FILE "
                        "(atomic write)")
    p.add_argument("--canonical", action="store_true",
                   help="zero volatile wall-clock fields so the merged "
                        "report is byte-identical to a serial run")

    p = sub.add_parser("worker",
                       help="lease and execute units from a "
                            "coordinator until the job drains "
                            "(SIGTERM finishes the current unit, then "
                            "exits)")
    p.add_argument("--coordinator", required=True, metavar="URL",
                   help="coordinator base URL, e.g. "
                        "http://127.0.0.1:8452")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes to run (0 = one per CPU "
                        "core; default 1 = in this process)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="local artifact cache directory (misses fall "
                        "through to the coordinator's shared cache)")

    p = sub.add_parser("devtool",
                       help="project static analysis (determinism & "
                            "concurrency lint, schema manifests)")
    dev_sub = p.add_subparsers(dest="devtool_command", required=True)
    dp = dev_sub.add_parser("lint",
                            help="run the repro-lint rules (R001..R006) "
                                 "over source paths")
    dp.add_argument("paths", nargs="*", metavar="PATH",
                    help="files or directories to lint (default: the "
                         "installed repro package)")
    dp.add_argument("--strict", action="store_true",
                    help="warnings also fail the run (the CI gate)")
    dp.add_argument("--json", action="store_true",
                    help="emit diagnostics as a JSON array")
    dp = dev_sub.add_parser("manifest",
                            help="regenerate the R004 schema manifest "
                                 "for SCHEMA_VERSION modules")
    dp.add_argument("paths", nargs="*", metavar="PATH",
                    help="files or directories to scan (default: the "
                         "installed repro package)")
    dp.add_argument("--write", action="store_true",
                    help="write schema_manifest.json next to each "
                         "module (default: print to stdout)")
    return parser


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _suite_progress_sink(event) -> None:
    """Mirror the historical suite progress lines (stage ends only)."""
    if (isinstance(event, ProgressEvent) and event.status == "end"
            and event.stage != "plan"):
        print(f"  {event.stage}: {event.payload}")


def _dispatch(args) -> int:
    """One command through the API: build request, execute, render."""
    build_request, render = _COMMANDS[args.command]
    request = build_request(args)
    events = None
    if args.command == "suite" and not args.json:
        events = _suite_progress_sink
    # `stats` always reports the artifact-store counters, so its
    # payload has the same shape one-shot and under the daemon (where
    # the long-lived store makes them interesting).
    store = ArtifactStore() if args.command == "stats" else None
    response: Response = execute(request, events=events, store=store)
    if args.json:
        sys.stdout.write(response.to_json())
        return response.exit_code
    if not response.ok:
        raise SystemExit(
            f"repro: error: {(response.error or {}).get('message')}")
    render(args, response.result)
    return response.exit_code


def _run_coordinator_command(args) -> int:
    from .dist import run_coordinator

    modes = tuple(ATPG_MODES) if args.mode == "all" else (args.mode,)
    config = _config(args,
                     learn_config=LearnConfig(max_frames=args.max_frames),
                     atpg_config=_atpg_config(args))
    announce = None if args.json else (
        lambda message: print(message, file=sys.stderr))
    try:
        response = run_coordinator(
            list(args.circuits), config=config, modes=modes,
            n_shards=args.shards, host=args.host, port=args.port,
            store_dir=args.store, journal_dir=args.journal,
            lease_timeout_s=args.lease_timeout,
            canonical=args.canonical, out=args.out, announce=announce)
    except OSError as exc:  # e.g. port already in use
        raise SystemExit(f"repro: error: {exc}") from exc
    if args.json:
        sys.stdout.write(response.to_json())
    else:
        _render_suite(args, response.result)
    return response.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        from .api.server import serve

        try:
            serve(host=args.host, port=args.port, store_dir=args.store,
                  allow_file_requests=args.allow_file_requests,
                  queue_depth=args.queue_depth,
                  max_active=args.max_active,
                  deadline_cap=args.deadline_cap,
                  allow_streaming=args.stream)
        except OSError as exc:  # e.g. port already in use
            raise SystemExit(f"repro: error: {exc}") from exc
        return 0
    if args.command == "coordinator":
        return _run_coordinator_command(args)
    if args.command == "devtool":
        from .devtools.cli import run_devtool

        return run_devtool(args)
    if args.command == "worker":
        from .dist import run_worker

        return run_worker(args.coordinator, jobs=args.jobs,
                          store_dir=args.store,
                          announce=lambda message:
                              print(message, file=sys.stderr))
    # Request faults come back as error envelopes from execute();
    # BrokenPipeError (e.g. `repro ... | head`) propagates as-is.
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
