"""Command-line interface: ``python -m repro <command>``.

Commands
--------
learn CIRCUIT        run sequential learning, print relations/ties
atpg CIRCUIT         run the three-mode ATPG comparison
untestable CIRCUIT   tie-gate vs FIRES untestability comparison
analyze CIRCUIT      density of encoding (small circuits)
stats CIRCUIT        structural statistics
list                 list built-in circuit names

CIRCUIT is a built-in name (``figure1``, ``s27``, ...), a profile name
prefixed with ``like:`` (``like:s382`` or ``like:s382@0.5``), or a path
to an ISCAS-89 ``.bench`` file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import analyze_state_space
from .atpg import compare_untestable, run_atpg
from .circuit import (
    BUILTIN,
    builtin_names,
    get_builtin,
    iscas_like,
    load_bench,
    retime_circuit,
)
from .circuit.netlist import Circuit
from .core import LearnConfig, learn


def resolve_circuit(spec: str, retime: int = 0) -> Circuit:
    """Turn a CLI circuit spec into a Circuit."""
    if spec in BUILTIN:
        circuit = get_builtin(spec)
    elif spec.startswith("like:"):
        body = spec[len("like:"):]
        if "@" in body:
            name, scale = body.split("@", 1)
            circuit = iscas_like(name, scale=float(scale))
        else:
            circuit = iscas_like(body)
    else:
        circuit = load_bench(spec)
    if retime:
        circuit = retime_circuit(circuit, moves=retime,
                                 name=circuit.name + "_retimed")
    return circuit


def _cmd_list(_args) -> int:
    for name in builtin_names():
        print(name)
    return 0


def _cmd_stats(args) -> int:
    circuit = resolve_circuit(args.circuit, args.retime)
    print(f"{circuit.name}: {circuit.stats()}")
    return 0


def _cmd_learn(args) -> int:
    circuit = resolve_circuit(args.circuit, args.retime)
    config = LearnConfig(max_frames=args.max_frames,
                         use_multi_node=not args.no_multi,
                         use_equivalence=not args.no_equiv)
    result = learn(circuit, config)
    print("summary:", result.summary())
    if args.verbose:
        print("\nties:")
        for tie in result.ties.all():
            kind = "seq" if tie.sequential else "comb"
            print(f"  {circuit.nodes[tie.nid].name} = {tie.value} "
                  f"[{kind}, {tie.phase}]")
        print("\nrelations:")
        for line in result.relations.dump():
            print(f"  {line}")
    if args.validate:
        violations = result.validate(n_sequences=args.validate)
        print(f"\nvalidation: {len(violations)} violations")
        for violation in violations[:10]:
            print(f"  {violation}")
        return 1 if violations else 0
    return 0


def _cmd_atpg(args) -> int:
    circuit = resolve_circuit(args.circuit, args.retime)
    learned = learn(circuit, LearnConfig(max_frames=args.max_frames))
    print(f"learning: {learned.summary()}\n")
    for mode, use in (("none", None), ("forbidden", learned),
                      ("known", learned)):
        stats = run_atpg(circuit, learned=use, mode=mode,
                         backtrack_limit=args.backtrack_limit,
                         max_frames=args.window,
                         max_faults=args.max_faults)
        print(f"mode={mode:9s} {stats.row()}")
    return 0


def _cmd_untestable(args) -> int:
    circuit = resolve_circuit(args.circuit, args.retime)
    print(compare_untestable(circuit).row())
    return 0


def _cmd_analyze(args) -> int:
    circuit = resolve_circuit(args.circuit, args.retime)
    space = analyze_state_space(circuit, max_ffs=args.max_ffs)
    print(f"{circuit.name}: {circuit.num_ffs} FFs, "
          f"{len(space.valid_states)} valid states, "
          f"density of encoding {space.density_of_encoding:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequential learning for real circuits (DAC 1998 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in circuits")

    def add_circuit(p):
        p.add_argument("circuit",
                       help="builtin name, like:<profile>[@scale], or "
                            ".bench path")
        p.add_argument("--retime", type=int, default=0, metavar="MOVES",
                       help="apply N backward-retiming moves first")

    p = sub.add_parser("stats", help="structural statistics")
    add_circuit(p)

    p = sub.add_parser("learn", help="run sequential learning")
    add_circuit(p)
    p.add_argument("--max-frames", type=int, default=50)
    p.add_argument("--no-multi", action="store_true",
                   help="disable multiple-node learning")
    p.add_argument("--no-equiv", action="store_true",
                   help="disable gate-equivalence identification")
    p.add_argument("--verbose", "-v", action="store_true")
    p.add_argument("--validate", type=int, default=0, metavar="N",
                   help="Monte-Carlo check with N random sequences")

    p = sub.add_parser("atpg", help="three-mode ATPG comparison")
    add_circuit(p)
    p.add_argument("--backtrack-limit", type=int, default=30)
    p.add_argument("--window", type=int, default=8,
                   help="maximum time-frame window")
    p.add_argument("--max-frames", type=int, default=50,
                   help="learning simulation depth")
    p.add_argument("--max-faults", type=int, default=None)

    p = sub.add_parser("untestable", help="tie gates vs FIRES")
    add_circuit(p)

    p = sub.add_parser("analyze", help="density of encoding")
    add_circuit(p)
    p.add_argument("--max-ffs", type=int, default=16)
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "stats": _cmd_stats,
    "learn": _cmd_learn,
    "atpg": _cmd_atpg,
    "untestable": _cmd_untestable,
    "analyze": _cmd_analyze,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
