"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands
--------
learn CIRCUIT        run sequential learning; ``--save FILE`` persists it
atpg CIRCUIT         ATPG comparison; ``--learned FILE`` skips relearning
suite CIRCUIT...     batch pipeline over many circuits (JSON report);
                     ``--jobs N`` shards them over N worker processes
untestable CIRCUIT   tie-gate vs FIRES untestability comparison
analyze CIRCUIT      density of encoding (small circuits)
stats CIRCUIT        structural statistics
list                 list built-in circuit names

Every command takes ``--json`` for machine-readable output on stdout.
CIRCUIT is a built-in name (``figure1``, ``s27``, ...), a profile name
prefixed with ``like:`` (``like:s382`` or ``like:s382@0.5``), or a path
to an ISCAS-89 ``.bench`` file.

The commands are thin wrappers over :class:`repro.flow.Session`; use
that API directly from Python.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import analyze_state_space
from .circuit.netlist import Circuit
from .core import LearnConfig
from .flow import (
    ATPG_ENGINES,
    ATPG_MODES,
    SIM_BACKENDS,
    ArtifactError,
    ATPGConfig,
    CircuitResolveError,
    ConfigError,
    ReproConfig,
    Session,
    run_suite,
)
from .flow.session import resolve_circuit as _resolve_circuit


def resolve_circuit(spec: str, retime: int = 0) -> Circuit:
    """Turn a CLI circuit spec into a Circuit (SystemExit on bad specs)."""
    try:
        return _resolve_circuit(spec, retime)
    except CircuitResolveError as exc:
        raise SystemExit(f"repro: error: {exc}") from exc


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=1, sort_keys=False))


def _session(args, learn_config: Optional[LearnConfig] = None,
             atpg_config: Optional[ATPGConfig] = None) -> Session:
    atpg_config = atpg_config or ATPGConfig()
    atpg_config.sim_backend = getattr(args, "backend",
                                      atpg_config.sim_backend)
    atpg_config.atpg_engine = getattr(args, "atpg_engine",
                                      atpg_config.atpg_engine)
    config = ReproConfig(learn=learn_config or LearnConfig(),
                         atpg=atpg_config,
                         retime=getattr(args, "retime", 0))
    return Session(args.circuit, config=config)


def _cmd_list(args) -> int:
    from .circuit import builtin_names

    names = builtin_names()
    if args.json:
        _print_json({"command": "list", "circuits": names})
    else:
        for name in names:
            print(name)
    return 0


def _cmd_stats(args) -> int:
    circuit = resolve_circuit(args.circuit, args.retime)
    if args.json:
        _print_json({"command": "stats", "circuit": circuit.name,
                     "fingerprint": circuit.fingerprint(),
                     **circuit.stats()})
    else:
        print(f"{circuit.name}: {circuit.stats()}")
    return 0


def _cmd_learn(args) -> int:
    session = _session(args, learn_config=LearnConfig(
        max_frames=args.max_frames,
        use_multi_node=not args.no_multi,
        use_equivalence=not args.no_equiv))
    result = session.learn()
    if args.save:
        session.save_learned(args.save)
    violations: Optional[List[str]] = None
    if args.validate:
        violations = result.validate(n_sequences=args.validate)
    if args.json:
        payload = {"command": "learn", **session.report()}
        if args.save:
            payload["artifact"] = args.save
        if violations is not None:
            payload["validation"] = {"sequences": args.validate,
                                     "violations": violations}
        _print_json(payload)
        return 1 if violations else 0
    print("summary:", result.summary())
    if args.save:
        print(f"saved learning artifact to {args.save}")
    if args.verbose:
        circuit = session.circuit
        print("\nties:")
        for tie in result.ties.all():
            kind = "seq" if tie.sequential else "comb"
            print(f"  {circuit.nodes[tie.nid].name} = {tie.value} "
                  f"[{kind}, {tie.phase}]")
        print("\nrelations:")
        for line in result.relations.dump():
            print(f"  {line}")
    if violations is not None:
        print(f"\nvalidation: {len(violations)} violations")
        for violation in violations[:10]:
            print(f"  {violation}")
        return 1 if violations else 0
    return 0


def _cmd_atpg(args) -> int:
    session = _session(
        args,
        learn_config=LearnConfig(max_frames=args.max_frames),
        atpg_config=ATPGConfig(backtrack_limit=args.backtrack_limit,
                               max_frames=args.window,
                               max_faults=args.max_faults))
    modes = list(ATPG_MODES) if args.mode == "all" else [args.mode]
    # An explicit --learned artifact is always loaded (so a stale one
    # fails loudly even for the 'none' baseline), but learning from
    # scratch is skipped when no learning mode actually runs.
    learned = None
    if args.learned:
        learned = session.load_learned(args.learned)
    elif any(mode != "none" for mode in modes):
        learned = session.learn()
    rows = session.compare(modes)
    if args.json:
        payload = {"command": "atpg", **session.report()}
        if args.learned:
            payload["artifact"] = args.learned
        _print_json(payload)
        return 0
    if learned is not None:
        source = f" (from {args.learned})" if args.learned else ""
        print(f"learning: {learned.summary()}{source}\n")
    for stats in rows:
        print(f"mode={stats.mode:9s} {stats.row()}")
    return 0


def _cmd_suite(args) -> int:
    config = ReproConfig(
        learn=LearnConfig(max_frames=args.max_frames),
        atpg=ATPGConfig(backtrack_limit=args.backtrack_limit,
                        max_frames=args.window,
                        max_faults=args.max_faults,
                        sim_backend=args.backend,
                        atpg_engine=args.atpg_engine),
        retime=args.retime,
        jobs=args.jobs)
    modes = list(ATPG_MODES) if args.mode == "all" else [args.mode]
    progress = None
    if not args.json:
        def progress(stage, event, payload):
            if event == "end":
                print(f"  {stage}: {payload}")
    report = run_suite(args.circuits, config=config, modes=modes,
                       progress=progress)
    if args.out:
        report.save(args.out, canonical=args.canonical)
    if args.json:
        payload = (report.canonical_dict() if args.canonical
                   else report.to_dict())
        _print_json({"command": "suite", **payload})
    else:
        print("\nsuite results:")
        for row in report.rows():
            print(f"  {row}")
        for error in report.errors:
            print(f"  error: {error['spec']}: {error['error']}",
                  file=sys.stderr)
        if args.out:
            print(f"saved suite report to {args.out}")
    return 1 if report.errors else 0


def _cmd_untestable(args) -> int:
    session = _session(args)
    comparison = session.untestable_screen()
    if args.json:
        _print_json({"command": "untestable", **session.report()})
    else:
        print(comparison.row())
    return 0


def _cmd_analyze(args) -> int:
    circuit = resolve_circuit(args.circuit, args.retime)
    space = analyze_state_space(circuit, max_ffs=args.max_ffs)
    if args.json:
        _print_json({
            "command": "analyze",
            "circuit": circuit.name,
            "ffs": circuit.num_ffs,
            "valid_states": len(space.valid_states),
            "density_of_encoding": space.density_of_encoding,
        })
    else:
        print(f"{circuit.name}: {circuit.num_ffs} FFs, "
              f"{len(space.valid_states)} valid states, "
              f"density of encoding {space.density_of_encoding:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequential learning for real circuits (DAC 1998 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p):
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output")

    def add_circuit(p):
        p.add_argument("circuit",
                       help="builtin name, like:<profile>[@scale], or "
                            ".bench path")
        p.add_argument("--retime", type=int, default=0, metavar="MOVES",
                       help="apply N backward-retiming moves first")
        add_json(p)

    def add_backend(p):
        p.add_argument("--backend", default="compiled",
                       choices=SIM_BACKENDS,
                       help="simulation backend (compiled kernels or "
                            "the reference interpreters; identical "
                            "results)")

    p = sub.add_parser("list", help="list built-in circuits")
    add_json(p)

    p = sub.add_parser("stats", help="structural statistics")
    add_circuit(p)

    p = sub.add_parser("learn", help="run sequential learning")
    add_circuit(p)
    add_backend(p)
    p.add_argument("--max-frames", type=int, default=50)
    p.add_argument("--no-multi", action="store_true",
                   help="disable multiple-node learning")
    p.add_argument("--no-equiv", action="store_true",
                   help="disable gate-equivalence identification")
    p.add_argument("--verbose", "-v", action="store_true")
    p.add_argument("--validate", type=int, default=0, metavar="N",
                   help="Monte-Carlo check with N random sequences")
    p.add_argument("--save", metavar="FILE",
                   help="write the learning artifact as JSON")

    def add_atpg_knobs(p):
        add_backend(p)
        p.add_argument("--atpg-engine", default="incremental",
                       choices=ATPG_ENGINES,
                       help="PODEM engine (incremental event-driven "
                            "search or the reference re-simulating "
                            "loop; identical results)")
        p.add_argument("--backtrack-limit", type=int, default=30)
        p.add_argument("--window", type=int, default=8,
                       help="maximum time-frame window")
        p.add_argument("--max-frames", type=int, default=50,
                       help="learning simulation depth")
        p.add_argument("--max-faults", type=int, default=None)
        p.add_argument("--mode", default="all",
                       choices=("all",) + ATPG_MODES,
                       help="implication mode(s) to run")

    p = sub.add_parser("atpg", help="ATPG with learned implications")
    add_circuit(p)
    add_atpg_knobs(p)
    p.add_argument("--learned", metavar="FILE",
                   help="load a saved learning artifact instead of "
                        "relearning")

    p = sub.add_parser("suite", help="batch pipeline over many circuits")
    p.add_argument("circuits", nargs="+",
                   help="circuit specs (builtin, like:<profile>, .bench)")
    p.add_argument("--retime", type=int, default=0, metavar="MOVES")
    add_json(p)
    add_atpg_knobs(p)
    p.add_argument("--out", metavar="FILE",
                   help="also write the suite report JSON to FILE "
                        "(atomic write)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard circuits over N worker processes "
                        "(0 = one per CPU core; default 1 = serial; "
                        "the report is identical for every N -- CLI "
                        "specs are strings, which always shard safely)")
    p.add_argument("--canonical", action="store_true",
                   help="zero volatile wall-clock fields so the report "
                        "is byte-identical across runs and --jobs "
                        "values")

    p = sub.add_parser("untestable", help="tie gates vs FIRES")
    add_circuit(p)
    add_backend(p)

    p = sub.add_parser("analyze", help="density of encoding")
    add_circuit(p)
    p.add_argument("--max-ffs", type=int, default=16)
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "stats": _cmd_stats,
    "learn": _cmd_learn,
    "atpg": _cmd_atpg,
    "suite": _cmd_suite,
    "untestable": _cmd_untestable,
    "analyze": _cmd_analyze,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # e.g. `repro ... | head`; not our error
        raise
    except (CircuitResolveError, ArtifactError, ConfigError,
            OSError) as exc:
        raise SystemExit(f"repro: error: {exc}") from exc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
