"""Table 2: learned invalid-state relations for Figure 1, by phase.

The paper staged the columns: single-node relations, additional
multiple-node relations, additional relations from gate-equivalence /
tie knowledge.  We regenerate the staging by running the engine with
phases progressively enabled.
"""

from conftest import emit_table, once

from repro.circuit import figure1
from repro.core import LearnConfig, learn


def _staged():
    single = learn(figure1(), LearnConfig(use_multi_node=False,
                                          use_equivalence=False))
    multi = learn(figure1(), LearnConfig(use_equivalence=False))
    full = learn(figure1())
    return single, multi, full


def _ff_set(result):
    out = set()
    for relation in result.relations:
        if result.relations.kind(relation) == "ff_ff":
            a = result.circuit.nodes[relation.a].name
            b = result.circuit.nodes[relation.b].name
            out.add(f"{a}={relation.va} -> {b}={relation.vb}")
    return out


def test_table2_invalid_state_relations(benchmark):
    single, multi, full = once(benchmark, _staged)
    s = _ff_set(single)
    m = _ff_set(multi)
    f = _ff_set(full)
    rows = []
    for relation in sorted(s):
        rows.append({"relation": relation, "phase": "single-node"})
    for relation in sorted(m - s):
        rows.append({"relation": relation, "phase": "+multiple-node"})
    for relation in sorted(f - m):
        rows.append({"relation": relation, "phase": "+equivalence/ties"})
    emit_table("table2_invalid_state_relations",
               ["relation", "phase"], rows)
    # Paper's single-node column (canonical orientation flips some).
    assert full.relations.has("F6", 1, "F4", 0)
    assert full.relations.has("F6", 1, "F3", 1)
    assert full.relations.has("F6", 1, "F2", 1)
    assert full.relations.has("F6", 1, "F1", 1)
    # Paper's multiple-node column.
    for b, vb in [("F2", 0), ("F4", 1), ("F5", 0), ("F6", 0), ("F1", 0)]:
        assert full.relations.has("F3", 0, b, vb), (b, vb)
    # Staging grows monotonically.
    assert s <= m <= f
    # Ties: G3/G8 combinational, G15 sequential.
    assert full.ties.names() == {"G3": 0, "G8": 0, "G15": 0}
