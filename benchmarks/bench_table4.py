"""Table 4: untestable faults via tie gates vs the FIRES-style baseline.

The paper's point: tie-gate learning, although untestability is only a
by-product, identifies a count of untestable faults *comparable* to the
dedicated FIRES analysis -- more on some circuits, fewer on others.
"""

from conftest import emit_table, once

from repro.circuit import figure1, iscas_like, retime_circuit
from repro.atpg import compare_untestable

WORKLOADS = [
    ("figure1", lambda: figure1()),
    ("s382_like", lambda: iscas_like("s382", scale=0.5)),
    ("s641_like", lambda: iscas_like("s641", scale=0.5)),
    ("s953_like", lambda: iscas_like("s953", scale=0.5)),
    ("s1423_like", lambda: iscas_like("s1423", scale=0.35)),
    ("s400_retimed", lambda: retime_circuit(
        iscas_like("s400", scale=0.5), moves=4, name="s400_retimed")),
]


def _rows():
    rows = []
    for name, make in WORKLOADS:
        comparison = compare_untestable(make())
        row = comparison.row()
        row["circuit"] = name
        row["tie_cpu_s"] = round(comparison.tie_cpu_s, 3)
        row["fires_cpu_s"] = round(comparison.fires_cpu_s, 3)
        rows.append(row)
    return rows


def test_table4_untestable_faults(benchmark):
    rows = once(benchmark, _rows)
    emit_table("table4_tie_gates_vs_fires",
               ["circuit", "total", "tie_gates", "fires", "tie_cpu_s",
                "fires_cpu_s"], rows)
    # Both mechanisms find untestable faults somewhere in the suite.
    assert any(row["tie_gates"] > 0 for row in rows)
    assert any(row["fires"] > 0 for row in rows)
    # figure1's counts are exact: the G3/G8 class plus the G15 class.
    fig1 = next(r for r in rows if r["circuit"] == "figure1")
    assert fig1["tie_gates"] == 2
