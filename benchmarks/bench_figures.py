"""Figures 1 and 2: the paper's worked examples, regenerated end to end.

Figure 1 is the learning walkthrough (stems, ties, the G15 conflict);
Figure 2 is the relation no backward/forward technique extracts and its
effect on ATPG decision nodes.  A density-of-encoding sweep over
retiming moves reproduces the ref-[9] mechanism motivating the retimed
rows of Table 5.
"""

from conftest import emit_table, once

from repro.circuit import figure1, figure2, retime_circuit
from repro.core import learn
from repro.analysis import analyze_state_space
from repro.atpg import Fault, SequentialATPG


def _figure1_story():
    circuit = figure1()
    result = learn(circuit)
    ties = [{"gate": circuit.nodes[t.nid].name,
             "tied_to": t.value,
             "kind": "sequential" if t.sequential else "combinational",
             "found_by": t.phase}
            for t in result.ties.all()]
    return result, ties


def test_figure1_learning_walkthrough(benchmark):
    result, ties = once(benchmark, _figure1_story)
    emit_table("figure1_ties", ["gate", "tied_to", "kind", "found_by"],
               ties)
    assert {t["gate"] for t in ties} == {"G3", "G8", "G15"}
    seq = next(t for t in ties if t["gate"] == "G15")
    assert seq["kind"] == "sequential" and seq["found_by"] == "multi"
    assert result.validate(30, 10) == []


def _figure2_story():
    circuit = figure2()
    learned = learn(circuit)
    fault = Fault(circuit.nid("G9"), None, 1)
    rows = []
    for mode, relations in (("none", None),
                            ("forbidden", learned.relations),
                            ("known", learned.relations)):
        atpg = SequentialATPG(circuit, relations=relations, mode=mode,
                              backtrack_limit=1000, max_frames=6)
        r = atpg.generate(fault)
        rows.append({"mode": mode, "status": r.status,
                     "decisions": r.decisions,
                     "backtracks": r.backtracks})
    return learned, rows


def test_figure2_relation_and_decision_pruning(benchmark):
    learned, rows = once(benchmark, _figure2_story)
    emit_table("figure2_g9_sa1",
               ["mode", "status", "decisions", "backtracks"], rows)
    assert learned.relations.has("G9", 0, "F2", 0)
    assert all(r["status"] == "detected" for r in rows)


def _density_sweep():
    base = figure2()
    rows = []
    for moves in range(0, 4):
        circuit = base if moves == 0 else retime_circuit(
            base, moves=moves, name=f"fig2_rt{moves}")
        space = analyze_state_space(circuit)
        learned = learn(circuit)
        rows.append({
            "retime_moves": moves,
            "FFs": circuit.num_ffs,
            "density": round(space.density_of_encoding, 4),
            "invalid_state_relations":
                len(learned.relations.invalid_state_relations()),
        })
    return rows


def test_density_of_encoding_vs_retiming(benchmark):
    rows = once(benchmark, _density_sweep)
    emit_table("figure_density_vs_retiming",
               ["retime_moves", "FFs", "density",
                "invalid_state_relations"], rows)
    # Retiming monotonically dilutes the encoding...
    densities = [r["density"] for r in rows]
    assert densities[-1] < densities[0]
    # ...and learning finds correspondingly more invalid-state relations.
    assert rows[-1]["invalid_state_relations"] > \
        rows[0]["invalid_state_relations"]
