"""Reference-vs-incremental PODEM engine benchmark.

Runs the same full ATPG workloads (``run_atpg``) through both engines,
checks the statistics are bit-identical, and writes wall clock,
decisions/second and the end-to-end speedup per case to
``BENCH_atpg.json`` (checked in at the repo root so the engine
trajectory is tracked over PRs; ``BENCH_backend.json`` recorded the
pre-engine baseline at 0.97x).

The corpus is the multi-decision set from the engine issue: the
PODEM-bound ``s386_like@0.75`` case (in the no-learning and known-value
modes), the larger ``s1423_like``, and a deep-window hard-fault chain
whose detection needs the window to grow past ten frames.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_atpg.py           # full
    PYTHONPATH=src python benchmarks/bench_atpg.py --tiny    # CI smoke

The >= 3x aggregate speedup gate mirrors ``bench_suite.py``: it is
waived on single-core hosts (where a loaded CI container makes wall
clocks unreliable) and under ``--tiny``, and enforced by CI on
multicore runners.
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.atpg import run_atpg
from repro.circuit import CircuitBuilder, figure1, iscas_like, s27
from repro.core import learn
from repro.flow import write_json_atomic

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_atpg.json")

SPEEDUP_GATE = 3.0


def deep_chain(depth: int):
    """A register chain whose tail faults need a ``depth``-frame window.

    Every stage mixes in the shared PI so activation and propagation
    both take PODEM decisions in several frames -- the worst case for a
    re-simulating engine, since each decision replays the whole window.
    """
    b = CircuitBuilder()
    b.inputs("a", "b")
    prev = "a"
    for i in range(depth):
        b.gate(f"g{i}", "and" if i % 2 else "or", prev, "b")
        b.dff(f"f{i}", f"g{i}")
        prev = f"f{i}"
    b.gate("q", "and", prev, "a")
    b.output("q")
    circuit = b.build()
    circuit.name = f"deep_chain{depth}"
    return circuit


def full_cases():
    """(name, circuit, mode, knobs, gated, note) benchmark rows.

    The three ``gated=True`` rows are the issue's multi-decision
    corpus; the known-mode row is informational (the learning fixpoint
    is round-bounded per frame, which caps how much of it the
    incremental engine can skip) and exempt from the speedup gate.
    """
    s386 = iscas_like("s386", scale=0.75)
    s1423 = iscas_like("s1423")
    return [
        ("s386_like@0.75", s386, "none", dict(
            backtrack_limit=10, max_frames=8), True,
         "the BENCH_backend atpg_e2e case (PODEM-bound at 0.97x there)"),
        ("s1423_like", s1423, "none", dict(
            backtrack_limit=8, max_frames=6, max_faults=120), True,
         "657 gates; event wavefronts are small fractions of the window"),
        ("s1423_like@w12", s1423, "none", dict(
            backtrack_limit=12, max_frames=12, max_faults=60), True,
         "deep-window hard faults: every one aborts after growing the "
         "window to 12 frames, so the reference re-simulates ~12 frames "
         "per decision"),
        ("s386_like@0.75", s386, "known", dict(
            backtrack_limit=10, max_frames=8), False,
         "informational: known-value fixpoints rebuild whole frames "
         "(round-bounded), capping the incremental win"),
    ]


def tiny_cases():
    return [
        ("figure1", figure1(), "none", dict(
            backtrack_limit=10, max_frames=6), True, "smoke"),
        ("s27", s27(), "known", dict(
            backtrack_limit=10, max_frames=6), False, "smoke"),
        ("deep_chain5", deep_chain(5), "none", dict(
            backtrack_limit=10, max_frames=7), True, "smoke"),
    ]


def _stats_key(stats):
    return (stats.total_faults, stats.detected, stats.untestable,
            stats.aborted, stats.collateral, stats.decisions,
            stats.backtracks, stats.sequences_total)


def run_case(name, circuit, mode, knobs, gated, note):
    learned = learn(circuit) if mode != "none" else None
    row = {"bench": "atpg_e2e", "circuit": name, "mode": mode,
           "gated": gated, "detail": note}
    keys = {}
    for engine in ("reference", "incremental"):
        t0 = time.perf_counter()
        stats = run_atpg(circuit, learned=learned, mode=mode,
                         keep_sequences=False, atpg_engine=engine,
                         **knobs)
        elapsed = time.perf_counter() - t0
        keys[engine] = _stats_key(stats)
        row[f"{engine}_s"] = round(elapsed, 4)
        row[f"{engine}_decisions_per_s"] = (
            round(stats.decisions / elapsed) if elapsed else 0)
    row["decisions"] = keys["incremental"][5]
    row["identical"] = keys["reference"] == keys["incremental"]
    row["speedup"] = (round(row["reference_s"] / row["incremental_s"], 2)
                      if row["incremental_s"] else 0.0)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="small circuits / tiny budgets (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path")
    args = parser.parse_args(argv)

    rows = [run_case(*case)
            for case in (tiny_cases() if args.tiny else full_cases())]
    ref_total = sum(r["reference_s"] for r in rows if r["gated"])
    inc_total = sum(r["incremental_s"] for r in rows if r["gated"])
    aggregate = round(ref_total / inc_total, 2) if inc_total else 0.0
    identical = all(row["identical"] for row in rows)

    cpu_count = os.cpu_count() or 1
    payload = {
        "format": "repro/bench-atpg",
        "version": 1,
        "tiny": args.tiny,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "rows": rows,
        "corpus_reference_s": round(ref_total, 3),
        "corpus_incremental_s": round(inc_total, 3),
        "corpus_speedup": aggregate,
        "identical": identical,
    }
    if cpu_count == 1:
        payload["note"] = ("single-core host: the >= 3x gate is waived "
                           "(CI enforces it on multicore runners); the "
                           "speedup is algorithmic and shows anyway")
    write_json_atomic(args.out, payload)

    for row in rows:
        tag = "corpus" if row["gated"] else "info  "
        print(f"{tag} {row['circuit']:16s} mode={row['mode']:9s} "
              f"ref {row['reference_s']:7.3f}s  "
              f"inc {row['incremental_s']:7.3f}s  "
              f"{row['speedup']:5.2f}x  identical={row['identical']}")
    print(f"corpus speedup: {aggregate:.2f}x "
          f"(ref {ref_total:.2f}s -> inc {inc_total:.2f}s)")
    print(f"wrote {os.path.abspath(args.out)}")

    if not identical:
        print("FAIL: engines disagreed on ATPG statistics",
              file=sys.stderr)
        return 1
    if not args.tiny and cpu_count > 1 and aggregate < SPEEDUP_GATE:
        print(f"FAIL: corpus speedup {aggregate:.2f}x below the "
              f"{SPEEDUP_GATE}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
