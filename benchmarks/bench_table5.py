"""Table 5: sequential ATPG with and without sequential learning.

For each workload and backtrack limit, three runs: no learning,
forbidden-value implications, known-value implications -- detected /
untestable / CPU, exactly the paper's protocol.  Backtrack limits and
fault sampling are scaled to pure-Python budgets (the paper used 30 and
1000 on a 167 MHz Ultra 1); the claims checked are the paper's
*qualitative* ones:

* learning raises detected+untestable (effective coverage),
* learning usually cuts CPU on the hard (low-density / retimed) cases,
* neither implication mode dominates the other consistently.
"""

from conftest import emit_table, once

from repro.circuit import figure1, iscas_like, retime_circuit
from repro.core import learn
from repro.atpg import run_atpg
from repro.flow import ATPGConfig

# Fault caps and limits are sized so the whole protocol (4 circuits x
# 2 limits x 3 modes) finishes in a few minutes of pure Python; raise
# them for a closer match to the paper's 30/1000 protocol.
WORKLOADS = [
    ("figure1", lambda: figure1(), 40),
    ("s382_like", lambda: iscas_like("s382", scale=0.4), 36),
    ("s953_like", lambda: iscas_like("s953", scale=0.35), 36),
    ("s400_retimed", lambda: retime_circuit(
        iscas_like("s400", scale=0.4), moves=3, name="s400_retimed"), 36),
]

BACKTRACK_LIMITS = (20, 60)


def _rows():
    rows = []
    for name, make, max_faults in WORKLOADS:
        circuit = make()
        learned = learn(circuit)
        for limit in BACKTRACK_LIMITS:
            for mode, use in (("none", None), ("forbidden", learned),
                              ("known", learned)):
                # keep_sequences=False: table rows only need counts, so
                # the generated vectors are dropped as they are graded.
                config = ATPGConfig(mode=mode, backtrack_limit=limit,
                                    max_frames=5, max_faults=max_faults)
                stats = run_atpg(circuit, learned=use, config=config)
                rows.append({
                    "circuit": name,
                    "bt_limit": limit,
                    "mode": mode,
                    "total": stats.total_faults,
                    "det": stats.detected,
                    "untest": stats.untestable,
                    "abort": stats.aborted,
                    "cov_%": round(100 * stats.test_coverage, 1),
                    "CPU(s)": round(stats.cpu_s, 2),
                })
    return rows


def test_table5_atpg_with_learning(benchmark):
    rows = once(benchmark, _rows)
    emit_table("table5_atpg_learning",
               ["circuit", "bt_limit", "mode", "total", "det", "untest",
                "abort", "cov_%", "CPU(s)"], rows)

    def cell(circuit, limit, mode):
        return next(r for r in rows if r["circuit"] == circuit and
                    r["bt_limit"] == limit and r["mode"] == mode)

    for circuit, _make, _cap in WORKLOADS:
        for limit in BACKTRACK_LIMITS:
            base = cell(circuit, limit, "none")
            forb = cell(circuit, limit, "forbidden")
            known = cell(circuit, limit, "known")
            # Paper claim: learning raises resolved faults
            # (detected + proven untestable) -- never lowers them much.
            resolved_base = base["det"] + base["untest"]
            for learned_row in (forb, known):
                resolved = learned_row["det"] + learned_row["untest"]
                assert resolved >= resolved_base, (circuit, limit,
                                                   learned_row["mode"])
    # Learning cuts aborted-fault counts somewhere in the suite.
    improvements = 0
    for circuit, _make, _cap in WORKLOADS:
        for limit in BACKTRACK_LIMITS:
            base = cell(circuit, limit, "none")
            if min(cell(circuit, limit, "forbidden")["abort"],
                   cell(circuit, limit, "known")["abort"]) < base["abort"]:
                improvements += 1
    assert improvements >= 2
