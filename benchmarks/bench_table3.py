"""Table 3: sequential learning statistics across the circuit suite.

Columns mirror the paper: FFs, gates, FF-FF relations, Gate-FF
relations, CPU seconds.  Circuits are the synthetic stand-ins with the
published FF/gate counts (see DESIGN.md section 4); the two largest
profiles are scaled so the pure-Python run finishes in CI time, and the
industrial-style rows exercise multiple clock domains and partial
set/reset exactly as the paper's indust1..3 did.

Paper claim reproduced: learning is *fast* (the paper: 680k gates in
under 7 minutes on 1998 hardware; here: thousands of gates in seconds
of pure Python) and extracts thousands of sequential relations.
"""

import time

from conftest import emit_table, once

from repro.circuit import industrial_like, iscas_like, retime_circuit
from repro.core import LearnConfig, learn

SUITE = [
    ("s382", 1.0), ("s386", 1.0), ("s400", 1.0), ("s444", 1.0),
    ("s641", 1.0), ("s713", 1.0), ("s953", 1.0), ("s967", 1.0),
    ("s1196", 1.0), ("s1238", 1.0), ("s1269", 1.0), ("s1423", 1.0),
    ("s3330", 1.0), ("s3384", 1.0), ("s4863", 0.5), ("s5378", 0.5),
    ("s9234", 0.25), ("s13207", 0.15),
]


def _suite_rows():
    rows = []
    config = LearnConfig(max_frames=50, multi_node_max_targets=4000)
    for name, scale in SUITE:
        circuit = iscas_like(name, scale=scale)
        result = learn(circuit, config)
        counts = result.counts(sequential_only=True)
        rows.append({
            "circuit": circuit.name,
            "FFs": circuit.num_ffs,
            "gates": circuit.num_gates,
            "FF-FF": counts["ff_ff"],
            "Gate-FF": counts["gate_ff"],
            "ties": len(result.ties),
            "CPU(s)": round(result.elapsed, 3),
        })
    # Retimed circuits (the paper's s510jcsrre-style rows).
    for base_name in ("s400", "s444"):
        base = iscas_like(base_name, scale=0.5)
        retimed = retime_circuit(base, moves=4,
                                 name=base_name + "_retimed")
        result = learn(retimed, config)
        counts = result.counts(sequential_only=True)
        rows.append({
            "circuit": retimed.name,
            "FFs": retimed.num_ffs,
            "gates": retimed.num_gates,
            "FF-FF": counts["ff_ff"],
            "Gate-FF": counts["gate_ff"],
            "ties": len(result.ties),
            "CPU(s)": round(result.elapsed, 3),
        })
    # Industrial-style circuits: clock domains + partial set/reset.
    for i, (ffs, gates) in enumerate([(60, 400), (120, 900)], start=1):
        circuit = industrial_like(f"indust{i}", n_ffs=ffs, n_gates=gates,
                                  seed=40 + i)
        result = learn(circuit, config)
        counts = result.counts(sequential_only=True)
        rows.append({
            "circuit": circuit.name,
            "FFs": circuit.num_ffs,
            "gates": circuit.num_gates,
            "FF-FF": counts["ff_ff"],
            "Gate-FF": counts["gate_ff"],
            "ties": len(result.ties),
            "CPU(s)": round(result.elapsed, 3),
        })
    return rows


def test_table3_learning_statistics(benchmark):
    rows = once(benchmark, _suite_rows)
    emit_table("table3_learning_statistics",
               ["circuit", "FFs", "gates", "FF-FF", "Gate-FF", "ties",
                "CPU(s)"], rows)
    # Shape assertions mirroring the paper's qualitative claims:
    # learning stays fast even on the larger circuits...
    assert all(row["CPU(s)"] < 120 for row in rows)
    # ...and extracts sequential relations on most workloads.
    with_relations = [r for r in rows if r["FF-FF"] + r["Gate-FF"] > 0]
    assert len(with_relations) >= len(rows) * 2 // 3
    # Bigger circuits take longer but sub-quadratically (fast technique).
    small = next(r for r in rows if r["circuit"].startswith("s382"))
    big = max(rows, key=lambda r: r["gates"])
    assert big["CPU(s)"] <= max(1.0, small["CPU(s)"]) * \
        (big["gates"] / max(small["gates"], 1)) ** 2
