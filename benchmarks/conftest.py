"""Shared helpers for the paper-reproduction benchmarks.

Each ``bench_tableN.py`` regenerates one table of the paper; rows are
printed (run ``pytest benchmarks/ --benchmark-only -s`` to see them) and
also appended to ``benchmarks/results/`` as text for EXPERIMENTS.md.
"""

import os
from typing import Dict, Iterable, List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, headers: List[str],
               rows: Iterable[Dict[str, object]]) -> str:
    """Format, print and persist one reproduced table."""
    rows = list(rows)
    widths = {h: max(len(h), *(len(str(r.get(h, ""))) for r in rows))
              if rows else len(h) for h in headers}
    lines = ["  ".join(h.ljust(widths[h]) for h in headers),
             "  ".join("-" * widths[h] for h in headers)]
    for row in rows:
        lines.append("  ".join(
            str(row.get(h, "")).ljust(widths[h]) for h in headers))
    text = f"== {name} ==\n" + "\n".join(lines) + "\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    return text


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
