"""Serve-tier benchmark: throughput, tail latency, cancellation.

Boots a real daemon (in-process, HTTP over loopback) and measures the
three production claims of the serve tier:

1. **Throughput** -- sustained mixed req/s from N interactive clients.
2. **Admission** -- with the batch queue saturated, interactive p99
   stays bounded (the weighted scheduler's whole point).
3. **Cancellation** -- a deadline-capped and an explicitly-cancelled
   run of a multi-second ATPG search both stop early, observable in
   ``/v1/metrics`` cancellation counters.

Also re-checks the headline streaming contract: the NDJSON terminal
envelope is byte-identical to a one-shot ``execute``.  Results land in
``BENCH_serve.json`` (checked in at the repo root so the trajectory is
tracked over PRs).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py           # full
    PYTHONPATH=src python benchmarks/bench_serve.py --tiny    # CI smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import sys
import threading
import time
from contextlib import closing

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import execute, make_server
from repro.flow import write_json_atomic
from repro.serve.metrics import histogram_quantile

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_serve.json")

#: Small fast circuit: the interactive workload.
INTERACTIVE_BODY = {
    "kind": "atpg", "spec": "s27", "modes": ["known"],
    "config": {"learn": {"max_frames": 5},
               "atpg": {"backtrack_limit": 5, "max_frames": 3}},
    "canonical": True, "priority": "interactive",
}

#: Profile-sampled circuit whose ATPG run takes whole seconds: the
#: batch flood and the cancellation legs.
SLOW_SPEC = "like:s382@0.5"
BATCH_SPEC_FULL = "like:s382@0.3"
BATCH_SPEC_TINY = "figure1"


def batch_body(tiny: bool) -> dict:
    body = dict(INTERACTIVE_BODY)
    body["spec"] = BATCH_SPEC_TINY if tiny else BATCH_SPEC_FULL
    body["priority"] = "batch"
    if not tiny:
        body.pop("config")  # full engine budget: a real batch job
    return body


def post(address, body: dict, path="/v1/execute", headers=None,
         timeout=300):
    host, port = address
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=timeout)) as conn:
        conn.request("POST", path, body=json.dumps(body).encode(),
                     headers={"Content-Type": "application/json",
                              **(headers or {})})
        response = conn.getresponse()
        return response.status, response.read()


def percentile(samples, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_clients(address, body, n_clients: int, duration_s: float):
    """N closed-loop clients for a fixed window; returns latencies."""
    latencies = []
    lock = threading.Lock()
    stop_at = time.perf_counter() + duration_s

    def loop():
        mine = []
        while time.perf_counter() < stop_at:
            t0 = time.perf_counter()
            status, _ = post(address, body)
            if status == 200:
                mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=loop) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies


def saturation_phase(server, address, tiny: bool, duration_s: float):
    """Flood batch, probe interactive.

    Returns (probe latencies, batch flood latencies, queue peak).
    The flood latencies include queue wait -- the counterfactual an
    interactive request would suffer without the weighted scheduler.
    """
    stop = threading.Event()
    batch_latencies = []
    lock = threading.Lock()
    flood_body = batch_body(tiny)

    def flood():
        mine = []
        while not stop.is_set():
            t0 = time.perf_counter()
            status, _ = post(address, flood_body)
            if status == 200:
                mine.append(time.perf_counter() - t0)
        with lock:
            batch_latencies.extend(mine)

    peak = [0]

    def sample_depths():
        while not stop.is_set():
            peak[0] = max(peak[0], server.admission.depths()["batch"])
            time.sleep(0.05)

    floods = [threading.Thread(target=flood) for _ in range(6)]
    sampler = threading.Thread(target=sample_depths)
    for thread in floods + [sampler]:
        thread.start()

    probe_latencies = run_clients(address, INTERACTIVE_BODY, 2,
                                  duration_s)
    stop.set()
    for thread in floods + [sampler]:
        thread.join(timeout=600)
    return probe_latencies, batch_latencies, peak[0]


def stream_identity_check(address) -> bool:
    """One streamed envelope vs the one-shot reference, byte for byte."""
    body = dict(INTERACTIVE_BODY)
    reference = execute(dict(body)).to_json().encode()
    host, port = address
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=300)) as conn:
        conn.request("POST", "/v1/stream", body=json.dumps(body).encode(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        while True:
            record = json.loads(response.readline())
            if record.get("event") == "result":
                envelope = b""
                while len(envelope) < record["bytes"]:
                    envelope += response.read(
                        record["bytes"] - len(envelope))
                return envelope == reference


def cancellation_phase(server, address, tiny: bool):
    """Deadline-capped + explicitly-cancelled runs of the slow spec."""
    slow = {"kind": "atpg", "spec": SLOW_SPEC, "modes": ["known"],
            "canonical": True}
    out = {}
    if not tiny:
        t0 = time.perf_counter()
        status, _ = post(address, slow)
        out["full_run_s"] = round(time.perf_counter() - t0, 3)

    deadline = dict(slow)
    deadline["deadline_s"] = 0.5
    t0 = time.perf_counter()
    status, raw = post(address, deadline)
    out["deadline_run_s"] = round(time.perf_counter() - t0, 3)
    out["deadline_status"] = status
    out["deadline_code"] = json.loads(raw)["error"]["code"]

    cancel_me = dict(slow)
    cancel_me["request_id"] = "bench-cancel"
    host, port = address
    t0 = time.perf_counter()
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=300)) as conn:
        conn.request("POST", "/v1/stream",
                     body=json.dumps(cancel_me).encode(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        response.readline()  # the run is live
        post(address, {"request_id": "bench-cancel"}, path="/v1/cancel")
        while True:
            record = json.loads(response.readline())
            if record.get("event") == "result":
                envelope = b""
                while len(envelope) < record["bytes"]:
                    envelope += response.read(
                        record["bytes"] - len(envelope))
                break
    out["cancel_run_s"] = round(time.perf_counter() - t0, 3)
    out["cancel_code"] = json.loads(envelope)["error"]["code"]

    # Counters land in the handler's ``finally`` a beat after the
    # terminal bytes; wait for both legs before scraping.
    settle_at = time.perf_counter() + 5
    while True:
        counters = server.metrics.to_dict()["counters"]
        out["cancellations"] = {
            key: value for key, value in counters.items()
            if key.startswith("cancellations_total")}
        if sum(out["cancellations"].values()) >= 2 \
                or time.perf_counter() > settle_at:
            return out
        time.sleep(0.02)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="short windows / small circuits (CI smoke)")
    parser.add_argument("--clients", type=int, default=4,
                        help="interactive client thread count")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds per load window")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path")
    args = parser.parse_args(argv)

    duration = args.duration if args.duration is not None \
        else (1.5 if args.tiny else 6.0)
    server = make_server(port=0, max_active=2, queue_depth=32)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    address = server.server_address[:2]
    try:
        # Warm the artifact store + kernel cache out of the window.
        post(address, INTERACTIVE_BODY)
        post(address, batch_body(args.tiny))

        latencies = run_clients(address, INTERACTIVE_BODY,
                                args.clients, duration)
        throughput = round(len(latencies) / duration, 1)

        probe_lat, batch_lat, batch_peak = saturation_phase(
            server, address, args.tiny, duration)

        identical = stream_identity_check(address)
        cancel = cancellation_phase(server, address, args.tiny)

        snapshot = server.metrics.histogram_snapshot(
            "request_latency_s", {"kind": "atpg"})
        server_p99 = histogram_quantile(snapshot["bounds"],
                                        snapshot["counts"], 0.99)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    cpu_count = os.cpu_count() or 1
    gate_active = not args.tiny and cpu_count > 1
    interactive_p99 = round(percentile(probe_lat, 0.99), 3)
    batch_mean = round(sum(batch_lat) / len(batch_lat), 3) \
        if batch_lat else 0.0
    payload = {
        "format": "repro/bench-serve",
        "version": 1,
        "tiny": args.tiny,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "clients": args.clients,
        "window_s": duration,
        "interactive_rps": throughput,
        "interactive_p50_s": round(percentile(latencies, 0.5), 3),
        "interactive_p99_s": round(percentile(latencies, 0.99), 3),
        "saturated_probe_count": len(probe_lat),
        "saturated_interactive_p50_s":
            round(percentile(probe_lat, 0.5), 3),
        "saturated_interactive_p99_s": interactive_p99,
        "batch_queue_peak": batch_peak,
        "batch_completed": len(batch_lat),
        "batch_mean_latency_s": batch_mean,
        "server_histogram_p99_s": server_p99,
        "stream_identical": identical,
        "cancellation": cancel,
        "latency_gate": ("enforced" if gate_active else "waived"),
    }
    if not gate_active:
        payload["note"] = (
            "tiny workload or single-core host: saturation and "
            "cancellation-savings gates apply on multicore machines "
            "(CI enforces them)")
    write_json_atomic(args.out, payload)

    print(f"{throughput} interactive req/s ({args.clients} clients); "
          f"saturated p99 {interactive_p99}s "
          f"(batch queue peak {batch_peak}); "
          f"stream identical={identical}")
    print(f"cancellation: {cancel}")
    print(f"wrote {os.path.abspath(args.out)}")

    if not identical:
        print("FAIL: streamed envelope differs from one-shot",
              file=sys.stderr)
        return 1
    if cancel["deadline_code"] != "deadline" \
            or cancel["cancel_code"] != "cancelled":
        print("FAIL: cancellation legs did not cut the runs short",
              file=sys.stderr)
        return 1
    if gate_active:
        if batch_peak < 2:
            print("FAIL: batch queue never saturated "
                  f"(peak {batch_peak})", file=sys.stderr)
            return 1
        if interactive_p99 >= batch_mean:
            # Without the weighted scheduler an interactive request
            # waits behind the whole batch backlog; with it, its p99
            # must undercut even the *mean* saturated batch latency.
            print("FAIL: saturated interactive p99 not bounded "
                  f"({interactive_p99}s >= batch mean "
                  f"{batch_mean}s)", file=sys.stderr)
            return 1
        if cancel["deadline_run_s"] >= cancel["full_run_s"] / 2:
            print("FAIL: deadline did not cut the slow run short",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
