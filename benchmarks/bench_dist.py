"""Serial-vs-distributed suite wall-clock benchmark.

Runs the same spec list twice: once as a one-shot serial ``suite``
request, once through a real coordinator with N ``repro worker``
subprocesses draining fault shards over HTTP.  Checks the two
canonical suite envelopes are **byte-identical** (the dist tier's
headline contract) and writes the wall-clock comparison to
``BENCH_dist.json`` (checked in at the repo root so the scaling
trajectory is tracked over PRs).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_dist.py            # full
    PYTHONPATH=src python benchmarks/bench_dist.py --tiny     # CI smoke
    PYTHONPATH=src python benchmarks/bench_dist.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import SuiteRequest, execute
from repro.core import LearnConfig
from repro.dist.coordinator import make_coordinator
from repro.flow import ATPGConfig, ReproConfig, write_json_atomic
from repro.sim import clear_compile_cache

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_dist.json")

#: Fewer, heavier circuits than the suite bench: the dist tier shards
#: *within* a circuit, so its win must show even when the circuit count
#: is below the worker count.
FULL_SPECS = ["like:s641@0.5", "like:s713@0.5",
              "like:s953@0.5", "like:s967@0.5"]

TINY_SPECS = ["figure1", "s27"]

MODES = ("forbidden",)


def build_config(tiny: bool) -> ReproConfig:
    if tiny:
        return ReproConfig(
            learn=LearnConfig(max_frames=5),
            atpg=ATPGConfig(mode="forbidden", backtrack_limit=5,
                            max_frames=3, max_faults=20))
    return ReproConfig(
        learn=LearnConfig(max_frames=20),
        atpg=ATPGConfig(mode="forbidden", backtrack_limit=10,
                        max_frames=5, max_faults=200))


def timed_serial(specs, config):
    clear_compile_cache()
    t0 = time.perf_counter()
    response = execute(SuiteRequest(specs=tuple(specs), modes=MODES,
                                    config=config, canonical=True))
    return time.perf_counter() - t0, response


def timed_distributed(specs, config, workers: int, n_shards: int):
    """Coordinator in-process, workers as real subprocesses."""
    clear_compile_cache()
    server = make_coordinator(specs, config=config, modes=MODES,
                              n_shards=n_shards)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    t0 = time.perf_counter()
    thread.start()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")])
    procs = [subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--coordinator", server.url],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for _ in range(workers)]
    try:
        while not server.job.done():
            time.sleep(0.05)
        response = server.job.merge(server.store, canonical=True)
        elapsed = time.perf_counter() - t0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
    return elapsed, response


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="small circuits / tiny ATPG budget "
                             "(CI smoke)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker subprocess count")
    parser.add_argument("--shards", type=int, default=8,
                        help="fault shards per (circuit, mode)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path")
    args = parser.parse_args(argv)

    specs = TINY_SPECS if args.tiny else FULL_SPECS
    config = build_config(args.tiny)
    n_shards = 2 if args.tiny else args.shards

    serial_s, serial = timed_serial(specs, config)
    dist_s, dist = timed_distributed(specs, config,
                                     workers=args.workers,
                                     n_shards=n_shards)

    identical = serial.to_json() == dist.to_json()
    speedup = round(serial_s / dist_s, 2) if dist_s else 0.0
    cpu_count = os.cpu_count() or 1
    gate_active = not args.tiny and cpu_count > 1

    payload = {
        "format": "repro/bench-dist",
        "version": 1,
        "tiny": args.tiny,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "workers": args.workers,
        "n_shards": n_shards,
        "circuits": len(specs),
        "suite_errors": len(serial.result.get("errors", [])),
        "specs": specs,
        "serial_s": round(serial_s, 3),
        "dist_s": round(dist_s, 3),
        "speedup": speedup,
        "identical": identical,
        "speedup_gate": ("enforced" if gate_active else "waived"),
    }
    if not gate_active:
        payload["note"] = (
            "tiny workload or single-core host: worker subprocesses "
            "cannot beat serial wall-clock here; the >= 1.5x gate "
            "applies on multicore machines (CI enforces it)")
    write_json_atomic(args.out, payload)

    print(f"{len(specs)} circuits, {args.workers} workers, "
          f"{n_shards} shards: serial {serial_s:.2f}s, "
          f"dist {dist_s:.2f}s, speedup {speedup:.2f}x, "
          f"identical={identical}")
    print(f"wrote {os.path.abspath(args.out)}")

    if not identical:
        print("FAIL: distributed envelope differs from serial",
              file=sys.stderr)
        return 1
    if gate_active and speedup < 1.5:
        print("FAIL: distributed run not >= 1.5x over serial",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
