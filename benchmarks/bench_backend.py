"""Backend speedup benchmark: reference vs compiled vs array.

Measures the two simulation hot paths and one end-to-end Table-5
workload on all three backends, checks the results are identical, and
writes the speedup table to ``BENCH_backend.json`` (checked in at the
repo root so the perf trajectory is tracked over PRs).  The array
backend is timed on whichever substrate the install selects (numpy when
importable, pure bigints otherwise); ``array_substrate`` in the payload
records which one ran.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_backend.py          # full
    PYTHONPATH=src python benchmarks/bench_backend.py --tiny   # CI smoke

Rows:

* ``pattern_sim``  -- packed random-pattern signatures (the learning
  engine's equivalence-candidate pass; 256-bit words; the array leg
  runs through the resident pattern engine).
* ``learn_signatures`` -- :func:`repro.sim.parallel.signatures` at the
  4096-bit array word width, the wide learning-signature path.
* ``fault_sim``    -- sequential fault simulation of the full collapsed
  stuck-at list over a random binary sequence (the acceptance
  microbenchmark: the compiled backend must be >= 3x faster here).
* ``atpg_e2e``     -- learning + full ATPG run (mode 'forbidden'),
  i.e. one Table-5 cell, dominated by fault dropping.
* ``atpg_drop``    -- the dropping loop itself: PODEM-generated
  sequences (produced once, outside timing) replayed through each
  backend's resident dropper over the full collapsed list.  PODEM
  dominates end-to-end runs and is backend-invariant, so this row
  isolates exactly the share a simulation backend can move.

Acceptance gates (full mode): compiled fault_sim >= 3x the reference;
on a multicore machine with numpy, array fault_sim >= 10x, array
pattern_sim >= 1x and array atpg_drop >= 2x the reference (waived on
single-core runners and bigint-substrate installs, matching the other
benches' single-core waivers).

Timing is best-of-N wall clock; identical-result assertions run on
every repetition, so the bench doubles as a coarse differential test.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import random

from repro.atpg.driver import run_atpg
from repro.atpg.faults import collapse_faults
from repro.circuit import iscas_like
from repro.sim.array_backend import (
    HAVE_NUMPY,
    ArrayFaultSimulator,
    simulate_patterns_array,
)
from repro.sim.compiled import CompiledFaultSimulator, compile_circuit
from repro.sim.faultsim import FaultSimulator, fault_coverage
from repro.sim.parallel import (
    random_source_masks,
    signatures,
    simulate_patterns,
)
from repro.sim.resident import make_resident_dropper

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_backend.json")


def _best_of(fn: Callable[[], object], repeat: int
             ) -> Tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _row(bench: str, circuit_name: str, detail: str,
         reference: Callable[[], object],
         compiled: Callable[[], object],
         array: Callable[[], object], repeat: int
         ) -> Dict[str, object]:
    ref_s, ref_value = _best_of(reference, repeat)
    comp_s, comp_value = _best_of(compiled, repeat)
    arr_s, arr_value = _best_of(array, repeat)
    assert ref_value == comp_value, f"{bench}: compiled disagrees"
    assert ref_value == arr_value, f"{bench}: array disagrees"
    return {
        "bench": bench,
        "circuit": circuit_name,
        "detail": detail,
        "reference_s": round(ref_s, 4),
        "compiled_s": round(comp_s, 4),
        "array_s": round(arr_s, 4),
        "speedup": round(ref_s / comp_s, 2) if comp_s else float("inf"),
        "array_speedup": (round(ref_s / arr_s, 2) if arr_s
                          else float("inf")),
    }


def build_rows(tiny: bool, repeat: int) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []

    # -- pattern simulation (learning signatures) ----------------------
    pat_circuit = iscas_like("s953" if tiny else "s1423",
                             scale=0.25 if tiny else 1.0)
    width = 256
    source = random_source_masks(pat_circuit, width, random.Random(2))
    compiled_circuit = compile_circuit(pat_circuit)
    loops = 3 if tiny else 20

    def pattern_reference():
        out = None
        for _ in range(loops):
            out = simulate_patterns(pat_circuit, source, width)
        return out

    def pattern_compiled():
        out = None
        for _ in range(loops):
            out = compiled_circuit.simulate_patterns(source, width)
        return out

    def pattern_array():
        out = None
        for _ in range(loops):
            out = simulate_patterns_array(pat_circuit, source, width)
        return out

    rows.append(_row(
        "pattern_sim", pat_circuit.name,
        f"{loops}x {width}-bit signatures over {pat_circuit.num_gates} "
        "gates", pattern_reference, pattern_compiled, pattern_array,
        repeat))

    # -- wide learning signatures (the array word width) ---------------
    sig_width = 1024 if tiny else 4096
    sig_loops = 2 if tiny else 10

    def wide_signatures(backend: str):
        out = None
        for _ in range(sig_loops):
            out = signatures(pat_circuit, width=sig_width,
                             rng=random.Random(7), backend=backend)
        return out

    rows.append(_row(
        "learn_signatures", pat_circuit.name,
        f"{sig_loops}x {sig_width}-bit signatures() over "
        f"{pat_circuit.num_gates} gates (LearnConfig.signature_width "
        "path)",
        lambda: wide_signatures("reference"),
        lambda: wide_signatures("compiled"),
        lambda: wide_signatures("array"), repeat))

    # -- fault simulation (the acceptance microbenchmark) --------------
    fs_circuit = iscas_like("s953" if tiny else "s1423",
                            scale=0.25 if tiny else 1.0)
    faults = collapse_faults(fs_circuit)
    rng = random.Random(1)
    inputs = [fs_circuit.nodes[i].name for i in fs_circuit.inputs]
    frames = 8 if tiny else 32
    sequence = [{n: rng.randint(0, 1) for n in inputs}
                for _ in range(frames)]
    ref_sim = FaultSimulator(fs_circuit)
    comp_sim = CompiledFaultSimulator(fs_circuit)
    arr_sim = ArrayFaultSimulator(fs_circuit)
    rows.append(_row(
        "fault_sim", fs_circuit.name,
        f"{len(faults)} collapsed faults x {frames} frames, "
        "width 128 (array backend at its own default width)",
        lambda: ref_sim.detected(sequence, faults),
        lambda: comp_sim.detected(sequence, faults),
        lambda: arr_sim.detected(sequence, faults), repeat))

    # -- end-to-end test-set grading (fault-sim bound) -----------------
    n_seq = 4 if tiny else 24
    grade_seqs = [[{n: rng.randint(0, 1) for n in inputs}
                   for _ in range(frames)] for _ in range(n_seq)]
    rows.append(_row(
        "fault_grading", fs_circuit.name,
        f"fault_coverage of {n_seq} random sequences over "
        f"{len(faults)} faults",
        lambda: fault_coverage(fs_circuit, grade_seqs, faults,
                               backend="reference"),
        lambda: fault_coverage(fs_circuit, grade_seqs, faults,
                               backend="compiled"),
        lambda: fault_coverage(fs_circuit, grade_seqs, faults,
                               backend="array"), repeat))

    # -- end-to-end Table-5 workload -----------------------------------
    e2e_circuit = iscas_like("s386", scale=0.25 if tiny else 0.75)
    e2e_faults = 16 if tiny else 220

    def atpg(backend: str) -> Tuple:
        stats = run_atpg(e2e_circuit, mode="none", backtrack_limit=10,
                         max_frames=4, max_faults=e2e_faults,
                         keep_sequences=False, sim_backend=backend)
        return (stats.total_faults, stats.detected, stats.untestable,
                stats.aborted, stats.collateral, stats.sequences_total)

    rows.append(_row(
        "atpg_e2e", e2e_circuit.name,
        "run_atpg mode=none bt=10; PODEM-bound on this engine, so the "
        "backend moves only its fault-dropping share",
        lambda: atpg("reference"), lambda: atpg("compiled"),
        lambda: atpg("array"), max(1, repeat - 1)))

    # -- the ATPG dropping loop itself ---------------------------------
    # PODEM dominates end-to-end s641 runs (and is backend-invariant),
    # so timing run_atpg mostly measured the test generator.  Generate
    # the sequences once, outside timing, then replay them through each
    # backend's resident dropper over the full collapsed list -- the
    # exact loop run_atpg executes after every successful generation.
    drop_circuit = iscas_like("s641", scale=0.25 if tiny else 1.0)
    drop_faults = collapse_faults(drop_circuit)
    drop_seqs = run_atpg(drop_circuit, mode="none", backtrack_limit=10,
                         max_frames=8, keep_sequences=True,
                         sim_backend="compiled").sequences

    def drop_replay(backend: str) -> List[List[int]]:
        dropper = make_resident_dropper(
            drop_circuit, drop_faults,
            list(range(len(drop_faults))), backend=backend)
        return [sorted(dropper.drop(sequence))
                for sequence in drop_seqs]

    rows.append(_row(
        "atpg_drop", drop_circuit.name,
        f"resident-dropper replay of {len(drop_seqs)} PODEM sequences "
        f"over {len(drop_faults)} collapsed faults (generation "
        "excluded; run_atpg's dropping loop verbatim)",
        lambda: drop_replay("reference"),
        lambda: drop_replay("compiled"),
        lambda: drop_replay("array"), repeat))

    # -- injection-plan cache (array-backend setup amortization) -------
    # ATPG grading calls detected() once per candidate sequence over
    # the same fault list; the splice tables depend only on the batch,
    # so a warm plan cache pays the setup once.  Cold = a fresh
    # simulator every call (plans rebuilt; circuit lowering is shared
    # via the module caches, so the delta is injection setup alone).
    inj_loops = 4 if tiny else 12

    def inject_cold():
        out = None
        for _ in range(inj_loops):
            out = ArrayFaultSimulator(fs_circuit).detected(sequence,
                                                           faults)
        return out

    warm_sim = ArrayFaultSimulator(fs_circuit)

    def inject_warm():
        out = None
        for _ in range(inj_loops):
            out = warm_sim.detected(sequence, faults)
        return out

    cold_s, cold_value = _best_of(inject_cold, repeat)
    warm_s, warm_value = _best_of(inject_warm, repeat)
    assert cold_value == warm_value, "inject_setup: warm cache disagrees"
    rows.append({
        "bench": "inject_setup",
        "circuit": fs_circuit.name,
        "detail": f"{inj_loops}x detected() over {len(faults)} faults; "
                  "cold rebuilds injection plans per call, warm reuses "
                  "the per-batch plan cache",
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "plan_cache_hits": warm_sim.plan_cache_hits,
        "plan_cache_misses": warm_sim.plan_cache_misses,
        "speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
    })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="small circuits / few repetitions "
                             "(CI smoke)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path")
    args = parser.parse_args(argv)

    rows = build_rows(args.tiny, args.repeat)
    payload = {
        "format": "repro/bench-backend",
        "version": 4,
        "tiny": args.tiny,
        "python": platform.python_version(),
        "array_substrate": "numpy" if HAVE_NUMPY else "bigint",
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    header = f"{'bench':<12} {'circuit':<12} {'reference_s':>11} " \
             f"{'compiled_s':>10} {'array_s':>9} {'speedup':>8} " \
             f"{'array':>7}"
    print(header)
    print("-" * len(header))
    for row in rows:
        if "reference_s" not in row:  # the array-only inject_setup row
            print(f"{row['bench']:<12} {row['circuit']:<12} "
                  f"cold {row['cold_s']:.4f}s  warm {row['warm_s']:.4f}s"
                  f"  {row['speedup']:>6.2f}x")
            continue
        print(f"{row['bench']:<12} {row['circuit']:<12} "
              f"{row['reference_s']:>11.4f} {row['compiled_s']:>10.4f} "
              f"{row['array_s']:>9.4f} {row['speedup']:>7.2f}x "
              f"{row['array_speedup']:>6.2f}x")
    print(f"\nwrote {os.path.abspath(args.out)} "
          f"(array substrate: {payload['array_substrate']})")

    fault_row = next(r for r in rows if r["bench"] == "fault_sim")
    if not args.tiny and fault_row["speedup"] < 3.0:
        print("FAIL: fault_sim speedup below the 3x acceptance bar",
              file=sys.stderr)
        return 1
    # The array gate mirrors the other benches' multicore-only
    # enforcement, and additionally requires the numpy substrate --
    # the bigint fallback is a correctness path, not a perf claim.
    multicore = (os.cpu_count() or 1) > 1
    pattern_row = next(r for r in rows if r["bench"] == "pattern_sim")
    drop_row = next(r for r in rows if r["bench"] == "atpg_drop")
    if not args.tiny and HAVE_NUMPY and multicore:
        if fault_row["array_speedup"] < 10.0:
            print("FAIL: array fault_sim speedup below the 10x "
                  "acceptance bar", file=sys.stderr)
            return 1
        if pattern_row["array_speedup"] < 1.0:
            print("FAIL: array pattern_sim slower than the reference "
                  "(resident pattern engine must at least break even)",
                  file=sys.stderr)
            return 1
        if drop_row["array_speedup"] < 2.0:
            print("FAIL: array atpg_drop speedup below the 2x "
                  "acceptance bar", file=sys.stderr)
            return 1
    elif not args.tiny:
        reason = ("bigint substrate" if not HAVE_NUMPY
                  else "single-core machine")
        print(f"note: array gates (fault_sim 10x, pattern_sim 1x, "
              f"atpg_drop 2x) waived ({reason}); measured "
              f"{fault_row['array_speedup']}x / "
              f"{pattern_row['array_speedup']}x / "
              f"{drop_row['array_speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
