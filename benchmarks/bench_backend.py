"""Reference-vs-compiled backend speedup benchmark.

Measures the two simulation hot paths and one end-to-end Table-5
workload on both backends, checks the results are identical, and writes
the speedup table to ``BENCH_backend.json`` (checked in at the repo
root so the perf trajectory is tracked over PRs).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_backend.py          # full
    PYTHONPATH=src python benchmarks/bench_backend.py --tiny   # CI smoke

Rows:

* ``pattern_sim``  -- packed random-pattern signatures (the learning
  engine's equivalence-candidate pass; 256-bit words).
* ``fault_sim``    -- sequential fault simulation of the full collapsed
  stuck-at list over a random binary sequence (the acceptance
  microbenchmark: the compiled backend must be >= 3x faster here).
* ``atpg_e2e``     -- learning + full ATPG run (mode 'forbidden'),
  i.e. one Table-5 cell, dominated by fault dropping.

Timing is best-of-N wall clock; identical-result assertions run on
every repetition, so the bench doubles as a coarse differential test.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import random

from repro.atpg.driver import run_atpg
from repro.atpg.faults import collapse_faults
from repro.circuit import iscas_like
from repro.sim.compiled import CompiledFaultSimulator, compile_circuit
from repro.sim.faultsim import FaultSimulator, fault_coverage
from repro.sim.parallel import random_source_masks, simulate_patterns

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_backend.json")


def _best_of(fn: Callable[[], object], repeat: int
             ) -> Tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _row(bench: str, circuit_name: str, detail: str,
         reference: Callable[[], object],
         compiled: Callable[[], object], repeat: int
         ) -> Dict[str, object]:
    ref_s, ref_value = _best_of(reference, repeat)
    comp_s, comp_value = _best_of(compiled, repeat)
    assert ref_value == comp_value, f"{bench}: backends disagree"
    return {
        "bench": bench,
        "circuit": circuit_name,
        "detail": detail,
        "reference_s": round(ref_s, 4),
        "compiled_s": round(comp_s, 4),
        "speedup": round(ref_s / comp_s, 2) if comp_s else float("inf"),
    }


def build_rows(tiny: bool, repeat: int) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []

    # -- pattern simulation (learning signatures) ----------------------
    pat_circuit = iscas_like("s953" if tiny else "s1423",
                             scale=0.25 if tiny else 1.0)
    width = 256
    source = random_source_masks(pat_circuit, width, random.Random(2))
    compiled_circuit = compile_circuit(pat_circuit)
    loops = 3 if tiny else 20

    def pattern_reference():
        out = None
        for _ in range(loops):
            out = simulate_patterns(pat_circuit, source, width)
        return out

    def pattern_compiled():
        out = None
        for _ in range(loops):
            out = compiled_circuit.simulate_patterns(source, width)
        return out

    rows.append(_row(
        "pattern_sim", pat_circuit.name,
        f"{loops}x {width}-bit signatures over {pat_circuit.num_gates} "
        "gates", pattern_reference, pattern_compiled, repeat))

    # -- fault simulation (the acceptance microbenchmark) --------------
    fs_circuit = iscas_like("s953" if tiny else "s1423",
                            scale=0.25 if tiny else 1.0)
    faults = collapse_faults(fs_circuit)
    rng = random.Random(1)
    inputs = [fs_circuit.nodes[i].name for i in fs_circuit.inputs]
    frames = 8 if tiny else 32
    sequence = [{n: rng.randint(0, 1) for n in inputs}
                for _ in range(frames)]
    ref_sim = FaultSimulator(fs_circuit)
    comp_sim = CompiledFaultSimulator(fs_circuit)
    rows.append(_row(
        "fault_sim", fs_circuit.name,
        f"{len(faults)} collapsed faults x {frames} frames, width 128",
        lambda: ref_sim.detected(sequence, faults),
        lambda: comp_sim.detected(sequence, faults), repeat))

    # -- end-to-end test-set grading (fault-sim bound) -----------------
    n_seq = 4 if tiny else 24
    grade_seqs = [[{n: rng.randint(0, 1) for n in inputs}
                   for _ in range(frames)] for _ in range(n_seq)]
    rows.append(_row(
        "fault_grading", fs_circuit.name,
        f"fault_coverage of {n_seq} random sequences over "
        f"{len(faults)} faults",
        lambda: fault_coverage(fs_circuit, grade_seqs, faults,
                               backend="reference"),
        lambda: fault_coverage(fs_circuit, grade_seqs, faults,
                               backend="compiled"), repeat))

    # -- end-to-end Table-5 workload -----------------------------------
    e2e_circuit = iscas_like("s386", scale=0.25 if tiny else 0.75)
    e2e_faults = 16 if tiny else 220

    def atpg(backend: str) -> Tuple:
        stats = run_atpg(e2e_circuit, mode="none", backtrack_limit=10,
                         max_frames=4, max_faults=e2e_faults,
                         keep_sequences=False, sim_backend=backend)
        return (stats.total_faults, stats.detected, stats.untestable,
                stats.aborted, stats.collateral, stats.sequences_total)

    rows.append(_row(
        "atpg_e2e", e2e_circuit.name,
        "run_atpg mode=none bt=10; PODEM-bound on this engine, so the "
        "backend moves only its fault-dropping share",
        lambda: atpg("reference"), lambda: atpg("compiled"),
        max(1, repeat - 1)))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="small circuits / few repetitions "
                             "(CI smoke)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path")
    args = parser.parse_args(argv)

    rows = build_rows(args.tiny, args.repeat)
    payload = {
        "format": "repro/bench-backend",
        "version": 1,
        "tiny": args.tiny,
        "python": platform.python_version(),
        "rows": rows,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    header = f"{'bench':<12} {'circuit':<12} {'reference_s':>11} " \
             f"{'compiled_s':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['bench']:<12} {row['circuit']:<12} "
              f"{row['reference_s']:>11.4f} {row['compiled_s']:>10.4f} "
              f"{row['speedup']:>7.2f}x")
    print(f"\nwrote {os.path.abspath(args.out)}")

    fault_row = next(r for r in rows if r["bench"] == "fault_sim")
    if not args.tiny and fault_row["speedup"] < 3.0:
        print("FAIL: fault_sim speedup below the 3x acceptance bar",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
