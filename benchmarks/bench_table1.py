"""Table 1: per-stem forward-simulation rows for the Figure 1 circuit.

Regenerates the paper's simulation table -- for every fanout stem and
both injected values, the implied (node=value) sets per time frame --
and benchmarks the single-node learning pass that produces it.
"""

from conftest import emit_table, once

from repro.circuit import figure1
from repro.core import run_single_node
from repro.sim import FrameSimulator


def _stem_rows():
    circuit = figure1()
    simulator = FrameSimulator(circuit, active_ffs=set(circuit.ffs))
    data = run_single_node(simulator, max_frames=50)
    rows = []
    max_frames_shown = 4
    for (stem, value), result in sorted(
            data.runs.items(),
            key=lambda item: (circuit.nodes[item[0][0]].name, item[0][1])):
        row = {"stem": f"{circuit.nodes[stem].name}={value}"}
        for frame in range(max_frames_shown):
            implied = data.implied_at(stem, value, frame)
            row[f"T={frame}"] = " ".join(
                f"{circuit.nodes[n].name}={v}"
                for n, v in sorted(implied.items(),
                                   key=lambda kv: circuit.nodes[kv[0]].name)
            ) or "{}"
        rows.append(row)
    return rows, data


def test_table1_stem_simulation(benchmark):
    rows, data = once(benchmark, _stem_rows)
    emit_table("table1_stem_simulation",
               ["stem", "T=0", "T=1", "T=2", "T=3"], rows)
    # Paper-anchored spot checks.
    by_stem = {r["stem"]: r for r in rows}
    assert "G3=0" in by_stem["I1=0"]["T=0"]
    assert "G3=0" in by_stem["I1=1"]["T=0"]
    assert "F3=1" in by_stem["I2=1"]["T=1"]
    assert "F4=0" in by_stem["I2=1"]["T=3"]
    assert "F3=1" in by_stem["F3=1"]["T=1"]
