"""Ablations of the learning engine's design choices.

Not a paper table -- these isolate the knobs DESIGN.md calls out:

* simulation depth (the paper's 50-frame budget),
* multiple-node learning on/off,
* equivalence/tie coupling on/off,
* event-driven sparsity (stems touched vs whole circuit).
"""

from conftest import emit_table, once

from repro.circuit import figure1, iscas_like
from repro.core import LearnConfig, learn


def _depth_sweep():
    circuit = iscas_like("s953", scale=0.5)
    rows = []
    for depth in (1, 2, 5, 10, 25, 50):
        result = learn(circuit, LearnConfig(max_frames=depth))
        counts = result.counts(sequential_only=True)
        rows.append({
            "max_frames": depth,
            "FF-FF": counts["ff_ff"],
            "Gate-FF": counts["gate_ff"],
            "ties": len(result.ties),
            "CPU(s)": round(result.elapsed, 3),
        })
    return rows


def test_ablation_simulation_depth(benchmark):
    rows = once(benchmark, _depth_sweep)
    emit_table("ablation_depth",
               ["max_frames", "FF-FF", "Gate-FF", "ties", "CPU(s)"], rows)
    # Depth 1 is combinational-only: sequential relations need frames.
    assert rows[0]["FF-FF"] <= rows[-1]["FF-FF"]
    # Yield saturates: 25 frames finds almost everything 50 does.
    assert rows[-2]["FF-FF"] >= rows[-1]["FF-FF"] * 0.9


def _phase_ablation():
    rows = []
    for name, make in (("figure1", figure1),
                       ("s953_like", lambda: iscas_like("s953",
                                                        scale=0.5))):
        circuit = make()
        configs = [
            ("single only", LearnConfig(use_multi_node=False,
                                        use_equivalence=False)),
            ("+multi", LearnConfig(use_equivalence=False)),
            ("+multi+equiv", LearnConfig()),
        ]
        for label, config in configs:
            result = learn(circuit, config)
            counts = result.counts(sequential_only=True)
            rows.append({
                "circuit": name,
                "phases": label,
                "FF-FF": counts["ff_ff"],
                "Gate-FF": counts["gate_ff"],
                "ties": len(result.ties),
                "CPU(s)": round(result.elapsed, 3),
            })
    return rows


def test_ablation_learning_phases(benchmark):
    rows = once(benchmark, _phase_ablation)
    emit_table("ablation_phases",
               ["circuit", "phases", "FF-FF", "Gate-FF", "ties",
                "CPU(s)"], rows)
    # Each phase only ever adds knowledge.
    for name in ("figure1", "s953_like"):
        series = [r for r in rows if r["circuit"] == name]
        assert series[0]["FF-FF"] <= series[1]["FF-FF"] <= \
            series[2]["FF-FF"]
        assert series[0]["ties"] <= series[2]["ties"]
    # On figure1 the multi phase is what proves G15 (3rd tie).
    fig1 = [r for r in rows if r["circuit"] == "figure1"]
    assert fig1[0]["ties"] == 2 and fig1[2]["ties"] == 3


def _sparsity():
    circuit = iscas_like("s1423", scale=0.5)
    result = learn(circuit)
    touched = 0
    total_cells = 0
    for data in result.single_node_data.values():
        for run in data.runs.values():
            for frame in run.frames:
                touched += len(frame)
                total_cells += len(circuit.nodes)
    return {
        "circuit": circuit.name,
        "value_cells_touched": touched,
        "dense_equivalent": total_cells,
        "sparsity_%": round(100.0 * touched / max(total_cells, 1), 2),
        "cpu_s": round(result.elapsed, 3),
    }


def test_ablation_event_driven_sparsity(benchmark):
    row = once(benchmark, _sparsity)
    emit_table("ablation_sparsity",
               ["circuit", "value_cells_touched", "dense_equivalent",
                "sparsity_%", "cpu_s"], [row])
    # The event-driven simulator touches a small fraction of the dense
    # (frames x nodes) value matrix -- the "fast" in the paper's title.
    assert row["sparsity_%"] < 50.0
