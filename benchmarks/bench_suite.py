"""Serial-vs-parallel suite wall-clock benchmark.

Runs the same spec list through ``run_suite`` with ``jobs=1`` and with a
worker pool, checks the two reports are byte-identical in canonical
form (wall-clock fields zeroed -- the only fields that may differ), and
writes the wall-clock comparison to ``BENCH_suite.json`` (checked in at
the repo root so the scaling trajectory is tracked over PRs).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_suite.py            # full
    PYTHONPATH=src python benchmarks/bench_suite.py --tiny     # CI smoke
    PYTHONPATH=src python benchmarks/bench_suite.py --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import LearnConfig
from repro.flow import ATPGConfig, ReproConfig, run_suite, \
    write_json_atomic
from repro.sim import clear_compile_cache

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_suite.json")

#: The acceptance workload: >= 8 library circuits through learning +
#: ATPG.  Half scale keeps the full bench in tens of seconds while
#: leaving each circuit heavy enough that sharding pays.
FULL_SPECS = ["like:s382@0.5", "like:s386@0.5", "like:s400@0.5",
              "like:s444@0.5", "like:s641@0.5", "like:s713@0.5",
              "like:s953@0.5", "like:s967@0.5"]

TINY_SPECS = ["figure1", "s27", "like:s382@0.25", "like:s386@0.25"]


def build_config(tiny: bool) -> ReproConfig:
    if tiny:
        return ReproConfig(
            learn=LearnConfig(max_frames=5),
            atpg=ATPGConfig(mode="forbidden", backtrack_limit=5,
                            max_frames=3, max_faults=20))
    return ReproConfig(
        learn=LearnConfig(max_frames=20),
        atpg=ATPGConfig(mode="forbidden", backtrack_limit=10,
                        max_frames=5, max_faults=200))


def timed_suite(specs, config, jobs):
    # Each leg starts with a cold kernel cache.  Under fork, pool
    # workers inherit the parent's compiled kernels; without this the
    # serial leg would pre-pay the parallel leg's compilation and
    # inflate the speedup.
    clear_compile_cache()
    t0 = time.perf_counter()
    report = run_suite(specs, config=config, modes=("forbidden",),
                       jobs=jobs)
    return time.perf_counter() - t0, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="small circuits / tiny ATPG budget "
                             "(CI smoke)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel leg "
                             "(0 = all CPU cores)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path")
    args = parser.parse_args(argv)

    specs = TINY_SPECS if args.tiny else FULL_SPECS
    config = build_config(args.tiny)

    serial_s, serial_report = timed_suite(specs, config, jobs=1)
    parallel_s, parallel_report = timed_suite(specs, config,
                                              jobs=args.jobs)

    serial_doc = json.dumps(serial_report.canonical_dict(),
                            sort_keys=True)
    parallel_doc = json.dumps(parallel_report.canonical_dict(),
                              sort_keys=True)
    identical = serial_doc == parallel_doc
    speedup = round(serial_s / parallel_s, 2) if parallel_s else 0.0

    cpu_count = os.cpu_count() or 1
    payload = {
        "format": "repro/bench-suite",
        "version": 1,
        "tiny": args.tiny,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "jobs": args.jobs,
        "circuits": len(serial_report.reports),
        "suite_errors": len(serial_report.errors),
        "specs": specs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": speedup,
        "identical": identical,
    }
    if cpu_count == 1:
        payload["note"] = ("single-core host: wall-clock parity is the "
                           "expected ceiling, the speedup gate applies "
                           "on multicore machines (CI runs it there)")
    write_json_atomic(args.out, payload)

    print(f"{len(specs)} circuits, jobs={args.jobs}: "
          f"serial {serial_s:.2f}s, parallel {parallel_s:.2f}s, "
          f"speedup {speedup:.2f}x, identical={identical}")
    print(f"wrote {os.path.abspath(args.out)}")

    if not identical:
        print("FAIL: parallel report differs from serial",
              file=sys.stderr)
        return 1
    # A single-core machine cannot show a wall-clock win no matter how
    # the pool behaves; the speedup bar only applies where parallelism
    # physically exists.
    if not args.tiny and (os.cpu_count() or 1) > 1 and speedup < 1.2:
        print("FAIL: parallel suite not measurably faster than serial",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
